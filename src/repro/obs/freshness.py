"""Freshness plane: fold per-batch hop stamps into latency SLOs.

The delivery ledger (PR 5) proves *completeness* — every published
point accounted.  This module proves *timeliness*: every traced batch's
:class:`~repro.core.tracectx.TraceContext` is folded, at store-ingest
time, into

* per-hop and end-to-end latency histograms keyed by metric group
  (``metrics`` vs ``selfmon`` vs anything else dotted in front), with
  per-bucket **exemplars** — the worst offending batch's full hop
  vector and the trace span active when it was recorded — so a fat
  bucket links straight to the hop that caused it;
* configurable **freshness SLOs** (:class:`FreshnessSLO`, e.g. "p99
  ingest-to-queryable <= 2 ticks") with burn-rate breach tracking: the
  fraction of recent batches over the threshold, divided by the SLO's
  error budget ``1 - quantile``.  Burn > 1 means the budget is being
  spent faster than the SLO allows; a breach fires once per excursion
  (edge-triggered) and carries the worst exemplar;
* an **exact waterfall**: lifetime per-hop latency totals whose sum
  equals the lifetime end-to-end total identically on the simulated
  clock (hop deltas telescope per batch; stamps are integral multiples
  of the tick, so re-ordering the summation loses nothing) — the
  ``python -m repro slo`` acceptance check.

Everything here is pure folding — the transports stamp, the pipeline's
``_on_metric`` calls :meth:`FreshnessTracker.record`, the
``FreshnessStage`` calls :meth:`FreshnessTracker.evaluate`.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from dataclasses import dataclass
from typing import Callable

from ..core.metric import SeriesBatch
from ..core.tracectx import TraceContext
from .hist import _quantile

__all__ = [
    "DEFAULT_BUCKETS_S",
    "Exemplar",
    "FreshnessHistogram",
    "FreshnessSLO",
    "FreshnessBreach",
    "FreshnessTracker",
]

#: histogram bucket upper edges (seconds); tick-scaled traffic lands in
#: the low buckets, pathological backlogs in the tail, +inf catches all
DEFAULT_BUCKETS_S: tuple[float, ...] = (
    1.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0, 640.0, float("inf")
)


@dataclass(frozen=True, slots=True)
class Exemplar:
    """Worst-offender reference: a latency linked back to its journey."""

    metric: str
    latency_s: float
    hops: tuple[tuple, ...]      # frozen snapshot of the hop vector
    origin_tick: int
    span: str = ""               # tracer span active when recorded

    def context(self) -> TraceContext:
        """Rehydrate the hop vector for latency attribution."""
        return TraceContext(origin_tick=self.origin_tick, hops=self.hops)

    def worst_hop(self) -> tuple[str, float] | None:
        """(hop, delta_s) carrying the largest share of the latency."""
        return self.context().worst_hop()

    def describe(self) -> str:
        ctx = self.context()
        worst = ctx.worst_hop()
        at = (f" (worst hop {worst[0]} +{worst[1]:g}s)"
              if worst is not None else "")
        return (f"{self.metric} +{self.latency_s:g}s via "
                f"{ctx.path()}{at} [tick {self.origin_tick}"
                + (f", span {self.span}" if self.span else "") + "]")


class FreshnessHistogram:
    """Bucketed latency histogram with per-bucket worst exemplars.

    Keeps the :class:`~repro.obs.hist.LatencyHistogram` recipe — a
    bounded recent window answering percentile queries plus O(1)
    lifetime aggregates — and adds fixed buckets, each remembering the
    worst offending batch that landed in it, so any part of the
    distribution can be traced back to a concrete journey.
    """

    __slots__ = ("buckets", "bucket_counts", "bucket_exemplars",
                 "_window", "count", "total_s", "max_s")

    def __init__(self, window: int = 512,
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS_S) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.buckets = tuple(float(b) for b in buckets)
        if not self.buckets or self.buckets[-1] != float("inf"):
            raise ValueError("bucket edges must end with +inf")
        self.bucket_counts = [0] * len(self.buckets)
        self.bucket_exemplars: list[Exemplar | None] = (
            [None] * len(self.buckets)
        )
        self._window: deque[float] = deque(maxlen=int(window))
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0

    def record(self, seconds: float,
               exemplar_fn: "Callable[[], Exemplar] | None" = None) -> None:
        """Fold one latency; ``exemplar_fn`` builds the linked exemplar
        lazily — it is only called when this sample becomes a bucket's
        new worst, so the steady state pays no construction cost."""
        s = float(seconds)
        self._window.append(s)
        self.count += 1
        self.total_s += s
        if s > self.max_s:
            self.max_s = s
        i = bisect_left(self.buckets, s)
        self.bucket_counts[i] += 1
        if exemplar_fn is not None:
            cur = self.bucket_exemplars[i]
            if cur is None or s > cur.latency_s:
                self.bucket_exemplars[i] = exemplar_fn()

    def __len__(self) -> int:
        return len(self._window)

    def percentile(self, p: float) -> float:
        if not self._window:
            return float("nan")
        return _quantile(sorted(self._window), p)

    def worst_exemplar(self) -> Exemplar | None:
        """Highest-latency exemplar across every bucket."""
        best: Exemplar | None = None
        for ex in self.bucket_exemplars:
            if ex is not None and (best is None
                                   or ex.latency_s > best.latency_s):
                best = ex
        return best

    def summary(self) -> dict[str, float]:
        if self._window:
            xs = sorted(self._window)
            p50, p99, w_max = (_quantile(xs, 50.0), _quantile(xs, 99.0),
                               xs[-1])
        else:
            p50 = p99 = w_max = float("nan")
        return {
            "p50_s": p50,
            "p99_s": p99,
            "max_s": w_max,
            "count": float(self.count),
            "mean_s": self.total_s / self.count if self.count
            else float("nan"),
        }


@dataclass(frozen=True, slots=True)
class FreshnessSLO:
    """One freshness objective over the recent batch window.

    ``quantile`` sets the error budget: a q-quantile SLO tolerates a
    fraction ``1 - q`` of batches over ``max_latency_s``.  ``hop``
    narrows the objective to one hop's latency share; ``group`` narrows
    it to one metric group (first dotted segment).  ``min_count`` stops
    a cold window from alarming on its first slow batch.
    """

    name: str
    max_latency_s: float
    quantile: float = 0.99
    hop: str | None = None
    group: str | None = None
    window: int = 256
    min_count: int = 16

    @property
    def budget(self) -> float:
        """Tolerated over-threshold fraction (``1 - quantile``)."""
        return max(1.0 - self.quantile, 1e-9)


@dataclass(frozen=True, slots=True)
class FreshnessBreach:
    """One edge-triggered SLO excursion, exemplar-linked."""

    slo: FreshnessSLO
    tier: str
    time: float
    burn_rate: float
    over: int                    # over-threshold batches in the window
    observed: int                # batches in the window
    exemplar: Exemplar | None

    def describe(self) -> str:
        """Breach message (the SEC escalation rule matches on it)."""
        worst = (self.exemplar.worst_hop()
                 if self.exemplar is not None else None)
        hop_part = (f"; worst hop {worst[0]} +{worst[1]:g}s"
                    if worst is not None else "")
        ex_part = (f" ({self.exemplar.describe()})"
                   if self.exemplar is not None else "")
        return (
            f"freshness SLO {self.slo.name} breached on "
            f"{self.tier or 'transport'}: burn {self.burn_rate:.1f}x "
            f"budget ({self.over}/{self.observed} batches over "
            f"{self.slo.max_latency_s:g}s p{self.slo.quantile * 100:g})"
            f"{hop_part}{ex_part}"
        )

    def fields(self) -> dict:
        """Structured payload for the breach event — the SEC rule
        forwards it onto the action request, so consumers get the
        offending hop without re-parsing the message."""
        out = {
            "slo": self.slo.name,
            "tier": self.tier,
            "burn_rate": self.burn_rate,
            "over": self.over,
            "observed": self.observed,
            "threshold_s": self.slo.max_latency_s,
        }
        if self.exemplar is not None:
            out["exemplar_metric"] = self.exemplar.metric
            out["exemplar_latency_s"] = self.exemplar.latency_s
            worst = self.exemplar.worst_hop()
            if worst is not None:
                out["worst_hop"] = worst[0]
                out["worst_hop_s"] = worst[1]
        return out


class _SloTrack:
    """Mutable burn-rate state for one :class:`FreshnessSLO`."""

    __slots__ = ("slo", "_over", "_over_count", "active", "breaches",
                 "_worst")

    def __init__(self, slo: FreshnessSLO) -> None:
        self.slo = slo
        self._over: deque[bool] = deque(maxlen=int(slo.window))
        self._over_count = 0      # running sum(self._over)
        self.active = False       # currently in breach (edge trigger)
        self.breaches = 0         # lifetime breach count
        self._worst: Exemplar | None = None

    def observe(self, latency_s: float,
                exemplar: Exemplar | None = None) -> None:
        over = latency_s > self.slo.max_latency_s
        q = self._over
        if len(q) == q.maxlen and q[0]:
            self._over_count -= 1
        q.append(over)
        if over:
            self._over_count += 1
            if exemplar is not None:
                if (self._worst is None
                        or latency_s > self._worst.latency_s):
                    self._worst = exemplar

    def burn_rate(self) -> float:
        if not self._over:
            return 0.0
        frac = self._over_count / len(self._over)
        return frac / self.slo.budget

    def evaluate(self, now: float, tier: str) -> FreshnessBreach | None:
        """Fire a breach on the burn crossing 1.0; rearm on recovery."""
        burn = self.burn_rate()
        if len(self._over) < self.slo.min_count or burn <= 1.0:
            if burn <= 1.0:
                self.active = False
            return None
        if self.active:
            return None
        self.active = True
        self.breaches += 1
        breach = FreshnessBreach(
            slo=self.slo, tier=tier, time=now, burn_rate=burn,
            over=self._over_count, observed=len(self._over),
            exemplar=self._worst,
        )
        self._worst = None        # next excursion finds its own worst
        return breach

    def status(self) -> dict:
        return {
            "name": self.slo.name,
            "max_latency_s": self.slo.max_latency_s,
            "quantile": self.slo.quantile,
            "burn_rate": self.burn_rate(),
            "observed": len(self._over),
            "active": self.active,
            "breaches": self.breaches,
        }


def default_slos(tick_s: float = 10.0) -> list[FreshnessSLO]:
    """The stock objective: p99 ingest-to-queryable within two ticks."""
    return [FreshnessSLO("ingest-p99", max_latency_s=2.0 * tick_s)]


def _exemplar_of(metric: str, e2e: float, hops: list,
                 origin_tick: int, span: str) -> Exemplar:
    """Freeze one batch's journey into an exemplar (hot path builds at
    most one of these per batch, and only when it sets a new worst)."""
    return Exemplar(
        metric=metric,
        latency_s=e2e,
        hops=tuple(tuple(h) for h in hops),
        origin_tick=origin_tick,
        span=span,
    )


class FreshnessTracker:
    """Folds traced batches into histograms, waterfalls, and SLOs."""

    def __init__(
        self,
        slos: list[FreshnessSLO] | None = None,
        tier: str = "",
        window: int = 512,
    ) -> None:
        self.tier = tier
        self._window = int(window)
        self.batches = 0          # traced batches folded
        self.points = 0
        self.e2e = FreshnessHistogram(window)
        self._groups: dict[str, FreshnessHistogram] = {}
        self._hops: dict[str, FreshnessHistogram] = {}
        # exact lifetime accumulators: stamps are integral multiples of
        # the tick, so these sums telescope with zero rounding and
        # sum(hop totals) == e2e total holds with ==, not isclose
        self._hop_totals: dict[str, float] = {}
        self._e2e_total = 0.0
        self._hop_order: list[str] = []
        self._group_memo: dict[str, tuple] = {}
        self._tracks = [_SloTrack(s) for s in (slos or [])]
        # split once so the per-batch hop loop only scans hop-keyed
        # tracks (usually none) instead of every configured SLO
        self._hop_tracks = [t for t in self._tracks
                            if t.slo.hop is not None]
        self._e2e_tracks = [t for t in self._tracks if t.slo.hop is None]

    # -- folding -----------------------------------------------------------

    def record(self, batch: SeriesBatch, span: str = "") -> None:
        """Fold one ingested batch's trace context (no-op if untraced).

        This runs once per ingested batch on the hot step loop, so the
        histogram folds are inlined (see :meth:`FreshnessHistogram.record`
        for the reference implementation) and the exemplar is built
        lazily — at most once per batch, and only when some bucket or
        SLO track takes it as its new worst.  In the steady state no
        exemplar construction happens at all.
        """
        ctx = batch.trace
        if ctx is None:
            return
        chops = ctx.hops
        if len(chops) < 2:
            return
        prev = chops[0][1]
        e2e = chops[-1][1] - prev
        metric = batch.metric
        ex: Exemplar | None = None      # built at most once, on demand

        self.batches += 1
        self.points += len(batch.times)
        self._e2e_total += e2e
        # metric names form a small fixed set, so the group split and
        # histogram lookup are memoized per full metric name
        memo = self._group_memo.get(metric)
        if memo is None:
            group = metric.split(".", 1)[0]
            gh = self._groups.get(group)
            if gh is None:
                gh = self._groups[group] = FreshnessHistogram(self._window)
            memo = self._group_memo[metric] = (group, gh)
        group, gh = memo
        for h in (self.e2e, gh):
            h._window.append(e2e)
            h.count += 1
            h.total_s += e2e
            if e2e > h.max_s:
                h.max_s = e2e
            i = 0 if e2e <= h.buckets[0] else bisect_left(h.buckets, e2e)
            h.bucket_counts[i] += 1
            cur = h.bucket_exemplars[i]
            if cur is None or e2e > cur.latency_s:
                if ex is None:
                    ex = _exemplar_of(metric, e2e, chops,
                                      ctx.origin_tick, span)
                h.bucket_exemplars[i] = ex
        hops = self._hops
        totals = self._hop_totals
        hop_tracks = self._hop_tracks
        for entry in chops[1:]:
            hop = entry[0]
            t = entry[1]
            delta = t - prev
            prev = t
            hh = hops.get(hop)
            if hh is None:
                hh = hops[hop] = FreshnessHistogram(self._window)
                totals[hop] = 0.0
                self._hop_order.append(hop)
            totals[hop] += delta
            hh._window.append(delta)
            hh.count += 1
            hh.total_s += delta
            if delta > hh.max_s:
                hh.max_s = delta
            i = (0 if delta <= hh.buckets[0]
                 else bisect_left(hh.buckets, delta))
            hh.bucket_counts[i] += 1
            cur = hh.bucket_exemplars[i]
            if cur is None or delta > cur.latency_s:
                if ex is None:
                    ex = _exemplar_of(metric, e2e, chops,
                                      ctx.origin_tick, span)
                hh.bucket_exemplars[i] = ex
            if hop_tracks:
                for track in hop_tracks:
                    slo = track.slo
                    if slo.hop == hop and (slo.group is None
                                           or slo.group == group):
                        if ex is None and delta > slo.max_latency_s:
                            ex = _exemplar_of(metric, e2e, chops,
                                              ctx.origin_tick, span)
                        track.observe(delta, ex)
        for track in self._e2e_tracks:
            slo = track.slo
            if slo.group is None or slo.group == group:
                # inlined _SloTrack.observe(e2e, ...) — one call per
                # batch; see observe() for the semantics
                over = e2e > slo.max_latency_s
                q = track._over
                if len(q) == q.maxlen and q[0]:
                    track._over_count -= 1
                q.append(over)
                if over:
                    track._over_count += 1
                    if ex is None:
                        ex = _exemplar_of(metric, e2e, chops,
                                          ctx.origin_tick, span)
                    w = track._worst
                    if w is None or e2e > w.latency_s:
                        track._worst = ex

    # -- SLO evaluation ----------------------------------------------------

    def evaluate(self, now: float) -> list[FreshnessBreach]:
        """Newly fired breaches since the last call (edge-triggered)."""
        out = []
        for track in self._tracks:
            breach = track.evaluate(now, self.tier)
            if breach is not None:
                out.append(breach)
        return out

    def burn_rate(self) -> float:
        """Worst burn rate across the configured SLOs."""
        return max((t.burn_rate() for t in self._tracks), default=0.0)

    def breach_count(self) -> int:
        return sum(t.breaches for t in self._tracks)

    def slo_status(self) -> list[dict]:
        return [t.status() for t in self._tracks]

    # -- waterfall ---------------------------------------------------------

    def waterfall(self) -> list[dict]:
        """Per-hop latency attribution rows in traversal order."""
        total = self._e2e_total
        rows = []
        for hop in self._hop_order:
            h = self._hops[hop]
            rows.append({
                "hop": hop,
                "count": h.count,
                "total_s": self._hop_totals[hop],
                "mean_s": (self._hop_totals[hop] / h.count
                           if h.count else 0.0),
                "p99_s": h.percentile(99.0),
                "max_s": h.max_s,
                "share": (self._hop_totals[hop] / total
                          if total > 0 else 0.0),
            })
        return rows

    def hop_total(self) -> float:
        """Sum of per-hop latency totals (== :meth:`e2e_total`)."""
        return sum(self._hop_totals[h] for h in self._hop_order)

    def e2e_total(self) -> float:
        """Lifetime end-to-end latency total across traced batches."""
        return self._e2e_total

    def waterfall_exact(self) -> bool:
        """True when hop attribution sums to end-to-end *exactly*."""
        return self.hop_total() == self._e2e_total

    def render_waterfall(self, width: int = 28) -> str:
        """Text waterfall: one bar per hop, share-scaled."""
        rows = self.waterfall()
        name = self.tier or "transport"
        lines = [
            f"--- freshness waterfall [{name}] "
            f"({self.batches} batches, {self.points} points) ---"
        ]
        if not rows:
            lines.append("  (no traced batches)")
            return "\n".join(lines)
        for r in rows:
            bar = "#" * max(0, round(r["share"] * width))
            lines.append(
                f"  {r['hop']:<8} {bar:<{width}} "
                f"mean {r['mean_s']:7.2f}s  p99 {r['p99_s']:7.2f}s  "
                f"max {r['max_s']:7.2f}s  share {100 * r['share']:5.1f}%"
            )
        e2e = self.e2e.summary()
        lines.append(
            f"  end-to-end: p50 {e2e['p50_s']:.2f}s  "
            f"p99 {e2e['p99_s']:.2f}s  max {e2e['max_s']:.2f}s"
        )
        lines.append(
            f"  exact: sum(hops) {self.hop_total():g}s "
            f"{'==' if self.waterfall_exact() else '!='} "
            f"end-to-end {self._e2e_total:g}s"
        )
        return "\n".join(lines)

    # -- summaries for selfmon / introspect --------------------------------

    def group_summaries(self) -> dict[str, dict[str, float]]:
        return {g: h.summary() for g, h in sorted(self._groups.items())}

    def hop_summaries(self) -> dict[str, dict[str, float]]:
        return {h: self._hops[h].summary() for h in self._hop_order}

    def snapshot(self) -> dict:
        """JSON-able state for the introspector report."""
        worst = self.e2e.worst_exemplar()
        return {
            "tier": self.tier,
            "batches": self.batches,
            "points": self.points,
            "e2e": self.e2e.summary(),
            "waterfall": self.waterfall(),
            "exact": self.waterfall_exact(),
            "groups": self.group_summaries(),
            "slos": self.slo_status(),
            "worst_exemplar": (worst.describe()
                               if worst is not None else None),
        }
