"""Self-observability: the stack monitoring itself ("monitor the monitoring").

Table I demands that monitoring have documented, bounded impact and that
operators can see data-path completeness end to end.  This package turns
that requirement on the reproduction itself:

* :mod:`repro.obs.trace` — lightweight nested trace spans over the
  pipeline's own execution, with a ring-buffer exporter;
* :mod:`repro.obs.hist` — small fixed-footprint latency histograms;
* :mod:`repro.obs.selfmetrics` — a meta-metric emitter publishing the
  stack's own vitals as ordinary ``SeriesBatch``es on ``selfmon.*``
  topics, so they land in the same TSDB, dashboards, and analyses as
  machine telemetry;
* :mod:`repro.obs.introspect` — a structured end-to-end health report
  over the whole pipeline (per-stage timings, drop/backpressure status,
  data-path completeness).
"""

from .hist import LatencyHistogram
from .introspect import HealthReport, PipelineIntrospector, StageReport
from .selfmetrics import SELFMON_METRICS, SelfMonitor
from .trace import Span, Tracer

__all__ = [
    "HealthReport",
    "LatencyHistogram",
    "PipelineIntrospector",
    "SELFMON_METRICS",
    "SelfMonitor",
    "Span",
    "StageReport",
    "Tracer",
]
