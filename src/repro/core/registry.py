"""Metric schema registry.

Table I (*Data Sources*) requires: "The meaning of all raw data should be
provided. Computations required to extract meaningful quantities from raw
data should be defined."  The registry is that contract in code: every
metric flowing through the stack is declared here with its unit, its
semantic class (gauge / counter / ratio), the component level it applies
to, a prose meaning, and — for derived metrics — the formula used to
compute it from raw sources.

Analyses consult the registry rather than hard-coding knowledge about
units, so a congestion analysis written against ``link.stall_ratio`` works
on any platform whose collectors publish that metric.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator

__all__ = ["MetricClass", "MetricSpec", "MetricRegistry", "default_registry"]


class MetricClass(str, enum.Enum):
    GAUGE = "gauge"          # point-in-time level (power draw, temperature)
    COUNTER = "counter"      # monotonically increasing count (flits, errors)
    RATIO = "ratio"          # dimensionless 0..1 (stall ratio, utilization)
    LATENCY = "latency"      # response-time measurement (probe latencies)
    FOM = "fom"              # benchmark figure of merit (higher is better)


@dataclass(frozen=True, slots=True)
class MetricSpec:
    """Declared schema of one metric."""

    name: str                     # dotted path, e.g. "node.power_w"
    unit: str                     # "W", "B/s", "ratio", "s", "count", ...
    klass: MetricClass
    level: str                    # component level: node|link|cabinet|ost|...
    meaning: str                  # prose definition (the Table I requirement)
    derivation: str = ""          # formula for derived metrics, "" when raw
    higher_is_worse: bool | None = None  # direction hint for anomaly logic

    @property
    def is_derived(self) -> bool:
        return bool(self.derivation)


class MetricRegistry:
    """Mutable registry of :class:`MetricSpec`, keyed by metric name.

    Registration of a name twice with a *different* spec is an error —
    two subsystems silently disagreeing on a metric's meaning is exactly
    the failure mode the paper attributes to undocumented vendor data.
    Re-registering an identical spec is a no-op so that independent
    collectors may both declare the metrics they publish.
    """

    def __init__(self) -> None:
        self._specs: dict[str, MetricSpec] = {}

    def register(self, spec: MetricSpec) -> MetricSpec:
        existing = self._specs.get(spec.name)
        if existing is not None:
            if existing != spec:
                raise ValueError(
                    f"metric {spec.name!r} already registered with a "
                    f"different spec"
                )
            return existing
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> MetricSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise KeyError(
                f"metric {name!r} is not registered; all data flowing "
                f"through the stack must have documented meaning"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[MetricSpec]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)

    def names(self) -> list[str]:
        return sorted(self._specs)

    def at_level(self, level: str) -> list[MetricSpec]:
        return [s for s in self._specs.values() if s.level == level]

    def document(self) -> str:
        """Render the registry as a human-readable data dictionary."""
        lines = ["metric | unit | class | level | meaning"]
        for name in self.names():
            s = self._specs[name]
            meaning = s.meaning
            if s.derivation:
                meaning += f" [derived: {s.derivation}]"
            lines.append(
                f"{s.name} | {s.unit} | {s.klass.value} | {s.level} | {meaning}"
            )
        return "\n".join(lines)


def _builtin_specs() -> Iterable[MetricSpec]:
    G, C, R, L, F = (
        MetricClass.GAUGE,
        MetricClass.COUNTER,
        MetricClass.RATIO,
        MetricClass.LATENCY,
        MetricClass.FOM,
    )
    yield MetricSpec("node.cpu_util", "ratio", R, "node",
                     "Fraction of CPU cycles doing application work.")
    yield MetricSpec("node.mem_free_gb", "GiB", G, "node",
                     "Free memory available to applications.",
                     higher_is_worse=False)
    yield MetricSpec("node.load1", "procs", G, "node",
                     "One-minute run-queue length (loadavg analog).")
    yield MetricSpec("node.power_w", "W", G, "node",
                     "Instantaneous node power draw at the VRM.")
    yield MetricSpec("node.temp_c", "degC", G, "node",
                     "Hottest on-node sensor temperature.",
                     higher_is_worse=True)
    yield MetricSpec("node.energy_j", "J", C, "node",
                     "Cumulative node energy (PM counter analog).")
    yield MetricSpec("node.clock_offset_s", "s", G, "node",
                     "Local clock offset from the global timebase.")
    yield MetricSpec("gpu.temp_c", "degC", G, "gpu",
                     "GPU die temperature.", higher_is_worse=True)
    yield MetricSpec("gpu.ecc_dbe", "count", C, "gpu",
                     "Cumulative double-bit ECC errors.",
                     higher_is_worse=True)
    yield MetricSpec("gpu.health", "ratio", R, "gpu",
                     "Remaining health margin of the GPU (1 new, 0 failed); "
                     "degrades under corrosive-gas exposure (ORNL).",
                     higher_is_worse=False)
    yield MetricSpec("link.traffic_flits", "flits", C, "link",
                     "Cumulative flits transmitted on an HSN link.")
    yield MetricSpec("link.stall_flits", "flits", C, "link",
                     "Cumulative credit-stall cycles on an HSN link.")
    yield MetricSpec("link.stall_ratio", "ratio", R, "link",
                     "Stalls per attempted flit over the sample interval.",
                     derivation="delta(stall_flits)/max(delta(traffic_flits)+delta(stall_flits),1)",
                     higher_is_worse=True)
    yield MetricSpec("link.ber", "errors/bit", G, "link",
                     "Bit error rate observed on the SerDes.",
                     higher_is_worse=True)
    yield MetricSpec("link.util", "ratio", R, "link",
                     "Link bandwidth utilization over the sample interval.")
    yield MetricSpec("node.inject_bw_frac", "ratio", R, "node",
                     "Injection bandwidth as a fraction of the NIC maximum "
                     "(the Figure 1 quantity).")
    yield MetricSpec("ost.read_bps", "B/s", G, "ost",
                     "Read bandwidth served by one object storage target.")
    yield MetricSpec("ost.write_bps", "B/s", G, "ost",
                     "Write bandwidth served by one object storage target.")
    yield MetricSpec("ost.fill_frac", "ratio", R, "ost",
                     "Capacity fill fraction of one OST.",
                     higher_is_worse=True)
    yield MetricSpec("fs.read_bps", "B/s", G, "fs",
                     "Aggregate filesystem read bandwidth (Figure 4 top).",
                     derivation="sum(ost.read_bps)")
    yield MetricSpec("fs.write_bps", "B/s", G, "fs",
                     "Aggregate filesystem write bandwidth.",
                     derivation="sum(ost.write_bps)")
    yield MetricSpec("probe.io_latency_s", "s", L, "ost",
                     "Latency of a small file-I/O probe against one OST "
                     "(NCSA probe suite).", higher_is_worse=True)
    yield MetricSpec("probe.md_latency_s", "s", L, "mds",
                     "Latency of a metadata operation probe against the MDS.",
                     higher_is_worse=True)
    yield MetricSpec("queue.depth", "jobs", G, "scheduler",
                     "Number of jobs waiting in the batch queue.")
    yield MetricSpec("queue.backlog_nodeh", "node-hours", G, "scheduler",
                     "Outstanding demand: sum of nodes*walltime queued "
                     "(NERSC backlog quantity).")
    yield MetricSpec("cabinet.power_w", "W", G, "cabinet",
                     "Cabinet-level power draw (Figure 3 bottom).",
                     derivation="sum(node.power_w in cabinet) + blower")
    yield MetricSpec("system.power_w", "W", G, "system",
                     "Full-system power draw (Figure 3 top).",
                     derivation="sum(cabinet.power_w)")
    yield MetricSpec("env.temp_c", "degC", G, "room",
                     "Machine-room ambient temperature.",
                     higher_is_worse=True)
    yield MetricSpec("env.humidity", "ratio", R, "room",
                     "Machine-room relative humidity.")
    yield MetricSpec("env.corrosion_rate", "A/month", G, "room",
                     "Copper/silver corrosion-coupon rate; ASHRAE severity "
                     "proxy (ORNL sulfur problem).", higher_is_worse=True)
    yield MetricSpec("env.particulate", "ug/m3", G, "room",
                     "Particulate concentration.", higher_is_worse=True)
    yield MetricSpec("bench.fom", "fom", F, "system",
                     "Figure of merit of one named benchmark run "
                     "(higher is better; the Figure 2 quantity).",
                     higher_is_worse=False)
    yield MetricSpec("bench.runtime_s", "s", L, "system",
                     "Wall time of one named benchmark run.",
                     higher_is_worse=True)
    yield MetricSpec("job.runtime_s", "s", L, "job",
                     "Wall time of a completed job.", higher_is_worse=True)
    yield MetricSpec("job.io_bps", "B/s", G, "job",
                     "Filesystem bandwidth (read+write) attributed to one "
                     "job over the sample interval (the Figure 4 "
                     "attribution series).",
                     derivation="sum over the job's stripe of served I/O")
    yield MetricSpec("health.pass_frac", "ratio", R, "node",
                     "Fraction of node-health tests passing (CSCS suite).",
                     higher_is_worse=False)

    # -- self-monitoring plane (repro.obs): the stack's own vitals --------
    # Table I: monitoring must have documented, bounded impact; these
    # metrics are that documentation, produced live by the stack itself.
    yield MetricSpec("selfmon.bus.publish_rate", "msg/s", G, "monitor",
                     "Messages published on the bus per second over the "
                     "self-monitor cadence.")
    yield MetricSpec("selfmon.bus.deliver_rate", "msg/s", G, "monitor",
                     "Successful consumer hand-offs per second over the "
                     "self-monitor cadence.")
    yield MetricSpec("selfmon.bus.drop_rate", "msg/s", G, "monitor",
                     "Envelopes evicted by the drop-oldest overflow policy "
                     "per second.", higher_is_worse=True)
    yield MetricSpec("selfmon.bus.dropped", "count", C, "monitor",
                     "Cumulative envelopes evicted from bounded "
                     "subscription queues.", higher_is_worse=True)
    yield MetricSpec("selfmon.bus.errors", "count", C, "monitor",
                     "Cumulative subscriber-callback exceptions isolated "
                     "during fan-out.", higher_is_worse=True)
    yield MetricSpec("selfmon.bus.queue_depth", "msgs", G, "monitor",
                     "Current backlog of one subscription queue "
                     "(component = subscription name).",
                     higher_is_worse=True)
    yield MetricSpec("selfmon.bus.completeness", "ratio", R, "monitor",
                     "Data-path completeness: fraction of attempted "
                     "deliveries that reached (or still await) a consumer.",
                     derivation="(delivered - dropped)/(delivered + errors)",
                     higher_is_worse=False)
    yield MetricSpec("selfmon.bus.partition_depth", "msgs", G, "monitor",
                     "Current backlog of one transport partition or "
                     "aggregator leaf (component = partition/leaf name; "
                     "absent on the flat bus).", higher_is_worse=True)
    yield MetricSpec("selfmon.bus.partition_dropped", "count", C, "monitor",
                     "Cumulative envelopes evicted from one bounded "
                     "transport partition (component = partition name).",
                     higher_is_worse=True)
    yield MetricSpec("selfmon.collector.sweep_p50_ms", "ms", L, "monitor",
                     "Median wall time of one collector sweep over the "
                     "recent window (component = collector name).",
                     higher_is_worse=True)
    yield MetricSpec("selfmon.collector.sweep_p95_ms", "ms", L, "monitor",
                     "95th-percentile wall time of one collector sweep "
                     "over the recent window.", higher_is_worse=True)
    yield MetricSpec("selfmon.collector.sweep_max_ms", "ms", L, "monitor",
                     "Maximum wall time of one collector sweep over the "
                     "recent window.", higher_is_worse=True)
    yield MetricSpec("selfmon.collector.sweeps", "count", C, "monitor",
                     "Cumulative sweeps a collector has run.")
    yield MetricSpec("selfmon.store.tsdb_ingest_rate", "samples/s", G,
                     "monitor",
                     "Samples ingested into the TSDB per second over the "
                     "self-monitor cadence.")
    yield MetricSpec("selfmon.store.tsdb_points", "samples", G, "monitor",
                     "Resident sample count in the TSDB.")
    yield MetricSpec("selfmon.store.tsdb_bytes", "B", G, "monitor",
                     "Compressed footprint of the TSDB.")
    yield MetricSpec("selfmon.store.shard_points", "samples", G, "monitor",
                     "Resident sample count of one TSDB shard "
                     "(component = shard name; absent on a single store).")
    yield MetricSpec("selfmon.store.shard_series", "count", G, "monitor",
                     "Resident series count of one TSDB shard.")
    yield MetricSpec("selfmon.store.shard_bytes", "B", G, "monitor",
                     "Compressed footprint of one TSDB shard.")
    yield MetricSpec("selfmon.store.cache_hits", "count", C, "monitor",
                     "Cumulative decompressed-chunk cache hits (reads "
                     "served without decoding a sealed chunk).")
    yield MetricSpec("selfmon.store.cache_misses", "count", C, "monitor",
                     "Cumulative decompressed-chunk cache misses (reads "
                     "that had to decode a sealed chunk).")
    yield MetricSpec("selfmon.store.cache_evictions", "count", C, "monitor",
                     "Cumulative LRU evictions from the decompressed-chunk "
                     "cache under its byte bound.", higher_is_worse=True)
    yield MetricSpec("selfmon.store.cache_bytes", "B", G, "monitor",
                     "Resident bytes of decompressed chunks held by the "
                     "cache.")
    yield MetricSpec("selfmon.store.disk_bytes", "B", G, "monitor",
                     "Bytes of sealed chunks persisted in the disk tier's "
                     "segment files (plus WAL tail).")
    yield MetricSpec("selfmon.store.disk_hot_bytes", "B", G, "monitor",
                     "Sealed-chunk bytes resident in memory under the "
                     "hot-tier byte budget.")
    yield MetricSpec("selfmon.store.disk_spill_rate", "chunks/s", G,
                     "monitor",
                     "Sealed chunks demoted to disk-only refs per second "
                     "over the self-monitor cadence.")
    yield MetricSpec("selfmon.store.disk_load_rate", "chunks/s", G,
                     "monitor",
                     "Spilled chunks read back through the mmap on the "
                     "query path per second over the self-monitor "
                     "cadence.", higher_is_worse=True)
    yield MetricSpec("selfmon.store.disk_map_hits", "count", C, "monitor",
                     "Cumulative spilled-chunk reads served from an "
                     "already-established mmap (no remap).")
    yield MetricSpec("selfmon.store.log_events", "count", C, "monitor",
                     "Events resident in the indexed log store.")
    yield MetricSpec("selfmon.store.sql_bytes", "B", G, "monitor",
                     "Footprint of the relational store (sqlite page "
                     "accounting).")
    yield MetricSpec("selfmon.sec.rule_fires", "count", C, "monitor",
                     "Cumulative action requests emitted by the SEC rule "
                     "engine.")
    yield MetricSpec("selfmon.sec.events_seen", "count", C, "monitor",
                     "Cumulative events fed through the SEC rule set.")
    yield MetricSpec("selfmon.actions.executed", "count", C, "monitor",
                     "Cumulative action executions recorded in the audit "
                     "log.")
    yield MetricSpec("selfmon.analysis.batches", "count", C, "monitor",
                     "Cumulative SeriesBatches consumed by one streaming "
                     "detector (component = detector name).")
    yield MetricSpec("selfmon.analysis.detections", "count", C, "monitor",
                     "Cumulative detections emitted by one streaming "
                     "detector.", higher_is_worse=True)
    yield MetricSpec("selfmon.analysis.sweep_p50_ms", "ms", L, "monitor",
                     "Median wall time one streaming detector spends "
                     "consuming a batch (windowed histogram).",
                     higher_is_worse=True)
    yield MetricSpec("selfmon.analysis.sweep_p95_ms", "ms", L, "monitor",
                     "p95 wall time one streaming detector spends "
                     "consuming a batch.", higher_is_worse=True)
    yield MetricSpec("selfmon.analysis.sweep_max_ms", "ms", L, "monitor",
                     "Worst batch-consumption wall time of one streaming "
                     "detector in the histogram window.",
                     higher_is_worse=True)
    yield MetricSpec("selfmon.pipeline.tick_ms", "ms", L, "monitor",
                     "Mean wall time of one full pipeline tick over the "
                     "self-monitor cadence (from the root trace span).",
                     higher_is_worse=True)
    yield MetricSpec("selfmon.exec.busy_fraction", "ratio", G, "monitor",
                     "Fraction of worker capacity kept busy between tick "
                     "barriers (component = execution-model name; 0 under "
                     "the serial model).")
    yield MetricSpec("selfmon.exec.barrier_wait_ms", "ms", G, "monitor",
                     "Wall time the tick loop spent waiting at ordered "
                     "barriers for straggler workers since start.",
                     higher_is_worse=True)
    yield MetricSpec("selfmon.exec.handoff_depth", "count", G, "monitor",
                     "Peak number of tasks handed to workers at one "
                     "barrier (fan-out width actually reached).")
    yield MetricSpec("selfmon.health.state", "state", G, "monitor",
                     "Supervised-component health (component = supervised "
                     "name): 0 = OK, 1 = DEGRADED, 2 = FAILED.",
                     higher_is_worse=True)
    yield MetricSpec("selfmon.health.transitions", "count", C, "monitor",
                     "Cumulative health-state transitions across every "
                     "supervised monitoring component.",
                     higher_is_worse=True)
    yield MetricSpec("selfmon.ledger.published_points", "samples", C,
                     "monitor",
                     "Cumulative metric points stamped at the transport "
                     "publish edge (the delivery-ledger baseline).")
    yield MetricSpec("selfmon.ledger.stored_points", "samples", C, "monitor",
                     "Cumulative metric points confirmed appended to the "
                     "numeric store (incl. redo-buffer replays).")
    yield MetricSpec("selfmon.ledger.lost_points", "samples", C, "monitor",
                     "Cumulative metric points lost with a known cause "
                     "(partition overflow, leaf overflow, chaos drop, "
                     "store error, redo eviction).", higher_is_worse=True)
    yield MetricSpec("selfmon.ledger.pending_points", "samples", G,
                     "monitor",
                     "Points parked in failed-shard redo buffers awaiting "
                     "recovery replay.", higher_is_worse=True)
    yield MetricSpec("selfmon.ledger.inflight_points", "samples", G,
                     "monitor",
                     "Points buffered inside the transport (partition "
                     "queues / coalescing windows) awaiting delivery.")
    yield MetricSpec("selfmon.ledger.unaccounted_points", "samples", G,
                     "monitor",
                     "Residual of the delivery-ledger balance identity; "
                     "nonzero means silent loss.",
                     derivation="published - stored - lost - pending "
                                "- in_flight",
                     higher_is_worse=True)
    yield MetricSpec("selfmon.freshness.e2e_p50_s", "s", L, "monitor",
                     "Median collected-to-queryable latency of traced "
                     "batches over the recent window.",
                     higher_is_worse=True)
    yield MetricSpec("selfmon.freshness.e2e_p99_s", "s", L, "monitor",
                     "99th-percentile collected-to-queryable latency of "
                     "traced batches (the stock SLO quantity).",
                     higher_is_worse=True)
    yield MetricSpec("selfmon.freshness.e2e_max_s", "s", L, "monitor",
                     "Worst collected-to-queryable latency in the recent "
                     "window.", higher_is_worse=True)
    yield MetricSpec("selfmon.freshness.hop_mean_s", "s", L, "monitor",
                     "Mean latency attributed to one transport hop "
                     "(component = hop id: publish/enqueue/pump/leaf/"
                     "merge/root/ingest).", higher_is_worse=True)
    yield MetricSpec("selfmon.freshness.hop_p99_s", "s", L, "monitor",
                     "p99 latency attributed to one transport hop over "
                     "the recent window.", higher_is_worse=True)
    yield MetricSpec("selfmon.freshness.batches", "count", C, "monitor",
                     "Cumulative traced batches folded into the freshness "
                     "histograms at store ingest.")
    yield MetricSpec("selfmon.freshness.slo_burn_rate", "ratio", G,
                     "monitor",
                     "Freshness-SLO error-budget burn (component = SLO "
                     "name): fraction of recent batches over the latency "
                     "threshold divided by the budget 1-quantile; > 1 "
                     "means the SLO is being breached.",
                     higher_is_worse=True)
    yield MetricSpec("selfmon.freshness.slo_breaches", "count", C,
                     "monitor",
                     "Cumulative edge-triggered breaches of one freshness "
                     "SLO (component = SLO name).", higher_is_worse=True)
    yield MetricSpec("selfmon.trace.dropped", "count", C, "monitor",
                     "Spans evicted from the tracer's bounded ring buffer "
                     "(accounted exporter loss; silent overwrite before).",
                     higher_is_worse=True)
    yield MetricSpec("selfmon.serve.qps", "queries/s", G, "monitor",
                     "Serving-plane query arrival rate (admitted + "
                     "rejected) over the last selfmon cadence.")
    yield MetricSpec("selfmon.serve.queries", "count", C, "monitor",
                     "Cumulative queries presented to the query front "
                     "end across every tenant.")
    yield MetricSpec("selfmon.serve.rejected", "count", C, "monitor",
                     "Cumulative queries shed by tenant admission "
                     "control (rate or concurrency); rejections return "
                     "empty answers, never exceptions.",
                     higher_is_worse=True)
    yield MetricSpec("selfmon.serve.cache_hit_ratio", "ratio", G,
                     "monitor",
                     "Query-result cache hits / lookups, lifetime; low "
                     "values under dashboard load mean the cache is "
                     "undersized or ingest is invalidating every window.")
    yield MetricSpec("selfmon.serve.cache_bytes", "B", G, "monitor",
                     "Bytes of finished answers held by the query-result "
                     "cache (bounded LRU).")
    yield MetricSpec("selfmon.serve.pyramid_answers", "count", C,
                     "monitor",
                     "Downsample/aggregate queries answered from rollup "
                     "pyramid rows instead of raw chunks.")
    yield MetricSpec("selfmon.serve.raw_answers", "count", C, "monitor",
                     "Downsample/aggregate queries that fell back to the "
                     "store's raw path (unplannable step/window or "
                     "pyramid-less series).")


def default_registry() -> MetricRegistry:
    """Registry pre-loaded with every metric the built-in stack publishes."""
    reg = MetricRegistry()
    for spec in _builtin_specs():
        reg.register(spec)
    return reg
