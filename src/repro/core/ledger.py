"""End-to-end delivery accounting: loss is a number, never a silence.

The paper's sites name *silent* loss (UDP syslog, LDMS drops) a top
pain point — not loss itself, but loss nobody can quantify.  The
:class:`DeliveryLedger` closes that gap with exact point accounting on
the metric data path:

* every transport stamps ``published`` at ``publish()`` time for each
  tracked :class:`~repro.core.metric.SeriesBatch`;
* the store-ingest side stamps ``stored`` for every point that lands in
  the TSDB;
* every loss site on the way — partition drop-oldest, aggtree leaf
  overflow, chaos-injected drops, store errors, redo-buffer eviction —
  stamps ``lost`` with a cause label.

The balance identity, checked by :meth:`DeliveryLedger.balance`::

    published == stored + lost + pending + in_flight

``pending`` (points parked in a failed shard's redo buffer) and
``in_flight`` (points buffered inside a transport's queues/windows) are
*live gauges* read from the components, not ledger counters — after a
``flush()`` with all shards recovered both are zero and the identity
collapses to the headline ``published == stored + accounted_lost``.
An injected duplicate is two publishes of the same points — both stamp
``published`` and both land (or are lost) downstream, so the identity
holds; the ``duplicated`` counter is a diagnostic marking how many of
those published points were fault-injected extras, not a balance term.

All ledger counters are monotone in normal operation; the single
documented exception is :meth:`DeliveryLedger.account_crash`, the
crash-recovery reconciliation: points that were ``stored`` but sat past
the disk tier's last fsync when the process died are moved from
``stored`` to ``lost`` under a named cause — the identity stays exact
across a hard crash, and the loss is a number, never a silence.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.core.metric import SeriesBatch

__all__ = ["DeliveryLedger", "BalanceReport", "TRACKED_TOPIC_PATTERNS"]

# Topic prefixes whose SeriesBatch payloads are accounted.  Event topics
# carry Event payloads (no points) and stay outside the ledger.
TRACKED_TOPIC_PATTERNS: tuple[str, ...] = ("metrics.", "selfmon.")


@dataclass(frozen=True, slots=True)
class BalanceReport:
    """One reconciliation snapshot of the ledger identity."""

    published: int
    duplicated: int
    stored: int
    lost: int
    pending: int
    in_flight: int
    lost_by_cause: dict[str, int] = field(default_factory=dict)

    @property
    def unaccounted(self) -> int:
        """The residual of the balance identity — zero iff every
        published point is stored, accounted lost, or visibly parked."""
        return (self.published
                - self.stored - self.lost - self.pending - self.in_flight)

    @property
    def balanced(self) -> bool:
        return self.unaccounted == 0

    @property
    def loss_fraction(self) -> float:
        if self.published == 0:
            return 0.0
        return self.lost / self.published

    def render(self) -> str:
        lines = [
            "delivery ledger",
            f"  published points    {self.published:12d}",
            f"  of which duplicated {self.duplicated:12d}",
            f"  stored points       {self.stored:12d}",
            f"  lost (accounted)    {self.lost:12d}",
        ]
        for cause in sorted(self.lost_by_cause):
            lines.append(
                f"    {cause:<18s}{self.lost_by_cause[cause]:12d}"
            )
        lines.append(f"  pending (redo)      {self.pending:12d}")
        lines.append(f"  in flight           {self.in_flight:12d}")
        lines.append(f"  unaccounted         {self.unaccounted:12d}")
        verdict = ("balanced: published == "
                   "stored + lost + pending + in_flight"
                   if self.balanced else "IMBALANCED — silent loss!")
        lines.append(f"  {verdict}")
        return "\n".join(lines)


class DeliveryLedger:
    """Monotone per-(source, metric) point accounting across the path.

    Transports call :meth:`published_batch` inside ``publish()``; the
    store-ingest callback calls :meth:`stored_batch`; every loss site
    calls :meth:`lost_batch`/:meth:`lost_points` with its cause.  The
    ledger itself never touches the data — it only counts.
    """

    __slots__ = ("published", "stored", "lost", "duplicated", "_topic_memo")

    def __init__(self) -> None:
        # (source, metric) -> points published at the transport edge
        self.published: defaultdict[tuple[str, str], int] = defaultdict(int)
        # metric -> points confirmed appended to the store
        self.stored: defaultdict[str, int] = defaultdict(int)
        # (cause, metric) -> points dropped with a known cause
        self.lost: defaultdict[tuple[str, str], int] = defaultdict(int)
        # metric -> extra deliveries from duplication faults (diagnostic)
        self.duplicated: defaultdict[str, int] = defaultdict(int)
        self._topic_memo: dict[str, bool] = {}

    # -- stamping ------------------------------------------------------------

    def tracks(self, topic: str) -> bool:
        """Is ``topic`` on the accounted data path? (memoized)"""
        hit = self._topic_memo.get(topic)
        if hit is None:
            hit = topic.startswith(TRACKED_TOPIC_PATTERNS)
            if len(self._topic_memo) > 4096:
                self._topic_memo.clear()
            self._topic_memo[topic] = hit
        return hit

    def published_batch(self, source: str, batch: SeriesBatch) -> None:
        self.published[(source, batch.metric)] += len(batch)

    def stored_batch(self, batch: SeriesBatch, n: int | None = None) -> None:
        self.stored[batch.metric] += len(batch) if n is None else n

    def stored_points(self, metric: str, n: int) -> None:
        self.stored[metric] += n

    def lost_batch(self, cause: str, batch: SeriesBatch) -> None:
        self.lost[(cause, batch.metric)] += len(batch)

    def lost_points(self, cause: str, metric: str, n: int) -> None:
        self.lost[(cause, metric)] += n

    def duplicated_batch(self, batch: SeriesBatch) -> None:
        self.duplicated[batch.metric] += len(batch)

    # -- totals --------------------------------------------------------------

    def published_total(self) -> int:
        return sum(self.published.values())

    def stored_total(self) -> int:
        return sum(self.stored.values())

    def lost_total(self) -> int:
        return sum(self.lost.values())

    def duplicated_total(self) -> int:
        return sum(self.duplicated.values())

    def lost_by_cause(self) -> dict[str, int]:
        out: defaultdict[str, int] = defaultdict(int)
        for (cause, _metric), n in self.lost.items():
            out[cause] += n
        return dict(out)

    # -- reconciliation ------------------------------------------------------

    def account_crash(
        self,
        durable: "dict[str, int]",
        cause: str = "crash-unsynced",
    ) -> int:
        """Re-baseline ``stored`` to what actually survived a crash.

        ``durable`` is the recovered store's per-metric point count
        (``points_by_metric()``).  For each metric the shortfall
        ``stored - durable`` — points acknowledged into the store but
        past the WAL/segment fsync horizon when the process died — is
        moved from ``stored`` to ``lost`` under ``cause``.  This is the
        one deliberately non-monotone ledger operation (see module
        docstring); it keeps ``published == stored + lost + pending +
        in_flight`` exact across a hard crash.  Returns total points
        moved.
        """
        moved = 0
        for metric, n in list(self.stored.items()):
            delta = n - int(durable.get(metric, 0))
            if delta > 0:
                self.stored[metric] = n - delta
                self.lost[(cause, metric)] += delta
                moved += delta
        return moved

    def balance(self, pending: int = 0, in_flight: int = 0) -> BalanceReport:
        """Reconcile: live ``pending`` (store redo buffers) and
        ``in_flight`` (transport queues/windows) gauges are supplied by
        the caller from the components' own surfaces."""
        return BalanceReport(
            published=self.published_total(),
            duplicated=self.duplicated_total(),
            stored=self.stored_total(),
            lost=self.lost_total(),
            pending=int(pending),
            in_flight=int(in_flight),
            lost_by_cause=self.lost_by_cause(),
        )
