"""Simulation time base and per-node clock drift.

Section III-B: "Associating numerical or log events over components and
time is particularly tricky when a single global timestamp is unavailable
as local clock drift can result in erroneous associations."  The machine
keeps one authoritative :class:`SimClock`; every node additionally owns a
:class:`DriftingClock` that converts true time to the node's *local* view.
Collectors can stamp telemetry with either, letting the correlation
analysis (and the clock-drift ablation bench) quantify exactly how much
association accuracy a global timebase buys.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SimClock", "DriftingClock", "DriftModel"]


class SimClock:
    """The authoritative, monotonically advancing simulation clock."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        """Advance by ``dt`` seconds (must be positive) and return new time."""
        if dt <= 0:
            raise ValueError(f"clock must advance forward, got dt={dt}")
        self._now += dt
        return self._now


class DriftingClock:
    """A local clock that drifts linearly away from the global timebase.

    ``rate_ppm`` is the frequency error in parts per million: a node at
    +50 ppm gains 50 microseconds per second of true time.  ``offset``
    is the accumulated error at epoch.  ``sync()`` models an NTP-style
    resynchronization that collapses the offset (but not the rate).
    """

    __slots__ = ("rate_ppm", "offset", "_epoch")

    def __init__(self, rate_ppm: float = 0.0, offset: float = 0.0) -> None:
        self.rate_ppm = float(rate_ppm)
        self.offset = float(offset)
        self._epoch = 0.0

    def local_time(self, true_time: float) -> float:
        """The node's local timestamp at global time ``true_time``."""
        elapsed = true_time - self._epoch
        return true_time + self.offset + elapsed * self.rate_ppm * 1e-6

    def error_at(self, true_time: float) -> float:
        """Absolute clock error (local - true) at ``true_time``."""
        return self.local_time(true_time) - true_time

    def sync(self, true_time: float) -> None:
        """Resynchronize: zero the accumulated offset at ``true_time``."""
        self.offset = 0.0
        self._epoch = true_time


class DriftModel:
    """Factory for a population of drifting clocks with realistic spread.

    Commodity oscillators sit within tens of ppm of nominal; we draw each
    node's rate from a normal distribution and the initial offset from a
    uniform window, both seeded for reproducibility.
    """

    def __init__(
        self,
        rate_sigma_ppm: float = 20.0,
        initial_offset_s: float = 0.05,
        seed: int = 0,
    ) -> None:
        self.rate_sigma_ppm = float(rate_sigma_ppm)
        self.initial_offset_s = float(initial_offset_s)
        self._rng = np.random.default_rng(seed)

    def make_clock(self) -> DriftingClock:
        rate = self._rng.normal(0.0, self.rate_sigma_ppm)
        offset = self._rng.uniform(
            -self.initial_offset_s, self.initial_offset_s
        )
        return DriftingClock(rate_ppm=rate, offset=offset)

    def make_clocks(self, n: int) -> list[DriftingClock]:
        return [self.make_clock() for _ in range(n)]
