"""Supervised-component lifecycle: the monitoring plane's own reliability.

Table I demands that "monitoring should continue to function as the
system degrades" — the monitoring system must be *more* reliable than
the machine it watches, and its failures must be visible, bounded, and
self-healing rather than silent.  Every plane of the pipeline (sources,
transport, storage, stages, response) threads through the same small
vocabulary defined here:

``Health``
    the three-state component condition: OK, DEGRADED (producing but
    impaired — e.g. a transport that dropped envelopes this tick),
    FAILED (isolated/quarantined, not trusted to run).

``Supervised``
    the protocol a component satisfies to be supervised: it reports a
    :class:`Health` and accepts explicit ``heal()`` / ``fail()``
    transitions (fault injection and recovery drive these directly).

``BackoffSchedule``
    deterministic exponential backoff — *no jitter*, because the whole
    stack is a reproducible simulation and retry times must be exact
    under a fixed seed.

``CircuitBreaker``
    trip after N consecutive failures, then quarantine: closed → open
    (after the trip) → half-open (one probe once the backoff elapses) →
    closed on probe success, re-open with a longer backoff on probe
    failure.

``Supervisor``
    the registry of supervised components.  Planes ask ``should_run``
    before exercising a component and ``record`` the outcome after;
    observation-driven planes (transport, storage) instead ``observe``
    a health directly.  Every state change is kept as a
    :class:`Transition` — the health timeline ``python -m repro chaos``
    prints, and the event stream the SEC escalation rule watches.

All times are *simulation* seconds (the pipeline's single global
timebase), so supervision behaves identically run to run.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

__all__ = [
    "Health",
    "Supervised",
    "Transition",
    "BackoffSchedule",
    "CircuitBreaker",
    "ComponentRecord",
    "Supervisor",
]


class Health(enum.Enum):
    """Three-state component condition (ordered by badness)."""

    OK = "ok"
    DEGRADED = "degraded"
    FAILED = "failed"

    @property
    def code(self) -> int:
        """Numeric encoding for the ``selfmon.health.state`` gauge."""
        return {"ok": 0, "degraded": 1, "failed": 2}[self.value]


@runtime_checkable
class Supervised(Protocol):
    """What a component exposes to participate in supervision."""

    def health(self) -> Health:
        """Current condition of this component."""
        ...

    def heal(self) -> None:
        """Explicit recovery transition (fault cleared)."""
        ...

    def fail(self, reason: str = "") -> None:
        """Explicit failure transition (fault injected / detected)."""
        ...


@dataclass(frozen=True, slots=True)
class Transition:
    """One health-state change of one supervised component."""

    time: float
    component: str
    old: Health
    new: Health
    reason: str = ""

    def describe(self) -> str:
        """The log/SEC line format the escalation rule matches."""
        tail = f": {self.reason}" if self.reason else ""
        return (
            f"monitor component {self.component} "
            f"{self.old.value.upper()} -> {self.new.value.upper()}{tail}"
        )


@dataclass(frozen=True, slots=True)
class BackoffSchedule:
    """Deterministic (jitter-free) exponential backoff.

    ``delay(k)`` is the quarantine length after the k-th consecutive
    breaker trip: ``base_s * factor**k`` capped at ``max_s``.  No jitter
    on purpose — retry times must be bit-reproducible under a seed.
    """

    base_s: float = 60.0
    factor: float = 2.0
    max_s: float = 3600.0

    def delay(self, trips: int) -> float:
        if trips < 0:
            raise ValueError("trips must be >= 0")
        try:
            d = self.base_s * (self.factor ** trips)
        except OverflowError:
            # factor**k overflows a float near k ~ 1024; everything that
            # far out clamps to the cap anyway
            return self.max_s
        return min(d, self.max_s)


class CircuitBreaker:
    """Trip after N consecutive failures; half-open probes on a backoff.

    States: *closed* (normal operation), *open* (quarantined — calls
    refused until ``retry_at``), *half-open* (exactly one probe allowed;
    its outcome closes or re-opens the breaker with a longer backoff).

    Thread-safe: state transitions take one internal lock, so
    concurrent plane workers recording outcomes cannot interleave a
    trip (the half-open single-probe discipline survives races).
    """

    __slots__ = ("trip_after", "backoff", "streak", "trips", "state",
                 "retry_at", "failures", "successes", "_lock")

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"

    def __init__(
        self,
        trip_after: int = 3,
        backoff: BackoffSchedule | None = None,
    ) -> None:
        if trip_after < 1:
            raise ValueError("trip_after must be >= 1")
        self.trip_after = int(trip_after)
        self.backoff = backoff if backoff is not None else BackoffSchedule()
        self.streak = 0          # consecutive failures
        self.trips = 0           # cumulative open transitions
        self.state = self.CLOSED
        self.retry_at = float("-inf")
        self.failures = 0
        self.successes = 0
        self._lock = threading.Lock()

    def allow(self, now: float) -> bool:
        """May the component run at ``now``?  An open breaker whose
        backoff has elapsed admits exactly one half-open probe."""
        # fast path: a closed breaker admits without the lock (a stale
        # read here only delays quarantine by one call, never corrupts)
        if self.state == self.CLOSED:
            return True
        with self._lock:
            if self.state == self.CLOSED:
                return True
            if self.state == self.OPEN and now + 1e-9 >= self.retry_at:
                self.state = self.HALF_OPEN
                return True
            return self.state == self.HALF_OPEN

    def record_success(self, now: float) -> None:
        with self._lock:
            self.successes += 1
            self.streak = 0
            self.state = self.CLOSED
            self.retry_at = float("-inf")

    def record_failure(self, now: float) -> None:
        with self._lock:
            self.failures += 1
            self.streak += 1
            if (self.state == self.HALF_OPEN
                    or self.streak >= self.trip_after):
                # probe failed, or the streak reached the trip
                # threshold: (re)open with the next backoff step
                self.state = self.OPEN
                self.retry_at = now + self.backoff.delay(self.trips)
                self.trips += 1

    @property
    def quarantined(self) -> bool:
        return self.state != self.CLOSED


@dataclass
class ComponentRecord:
    """Supervisor-side state of one supervised component."""

    name: str
    health: Health = Health.OK
    breaker: CircuitBreaker = field(default_factory=CircuitBreaker)
    last_reason: str = ""
    clean_streak: int = 0    # consecutive clean observations (hysteresis)

    def summary(self) -> dict[str, float | str]:
        return {
            "state": self.health.value,
            "failures": float(self.breaker.failures),
            "successes": float(self.breaker.successes),
            "trips": float(self.breaker.trips),
            "quarantined": float(self.breaker.quarantined),
            "reason": self.last_reason,
        }


class Supervisor:
    """Registry of supervised components with retry/backoff/quarantine.

    Two usage styles, matching the two kinds of plane:

    * *call-driven* (collectors, stages): ask :meth:`should_run` before
      exercising the component, :meth:`record` the outcome after.  The
      per-component circuit breaker converts failure streaks into
      quarantine with deterministic exponential backoff and half-open
      probes.
    * *observation-driven* (transport, storage): derive a
      :class:`Health` from the component's own stats surface each tick
      and :meth:`observe` it; ``heal_after`` consecutive clean
      observations are required before a degraded component returns to
      OK (hysteresis against flapping).

    Every state change lands in :attr:`transitions` — the health
    timeline.

    Thread-safe: one supervisor lock serializes every mutating entry
    point (``record``/``observe``/``fail``/``heal`` and registration),
    so concurrent plane workers produce exact counter totals and an
    uncorrupted transition timeline.  ``should_run``'s closed-breaker
    fast path stays lock-free — a stale read there only admits one
    extra call, which the breaker then records under the lock.
    """

    def __init__(
        self,
        trip_after: int = 3,
        backoff: BackoffSchedule | None = None,
        heal_after: int = 2,
    ) -> None:
        self.trip_after = int(trip_after)
        self.backoff = backoff if backoff is not None else BackoffSchedule()
        self.heal_after = int(heal_after)
        self.components: dict[str, ComponentRecord] = {}
        self.transitions: list[Transition] = []
        self._lock = threading.Lock()

    # -- registry -----------------------------------------------------------

    def register(self, name: str) -> ComponentRecord:
        rec = self.components.get(name)
        if rec is not None:
            return rec
        with self._lock:
            rec = self.components.get(name)
            if rec is None:
                rec = ComponentRecord(
                    name,
                    breaker=CircuitBreaker(self.trip_after, self.backoff),
                )
                self.components[name] = rec
            return rec

    def health(self, name: str) -> Health:
        rec = self.components.get(name)
        return rec.health if rec is not None else Health.OK

    def _set_health(self, rec: ComponentRecord, new: Health, now: float,
                    reason: str = "") -> None:
        if rec.health is new:
            return
        self.transitions.append(
            Transition(now, rec.name, rec.health, new, reason)
        )
        rec.health = new
        rec.last_reason = reason

    # -- call-driven supervision --------------------------------------------

    def should_run(self, name: str, now: float) -> bool:
        """True when the component may run (not quarantined, or due a
        half-open probe)."""
        rec = self.components.get(name)
        if rec is None:
            rec = self.register(name)
        br = rec.breaker
        # fast path: a closed breaker always admits (this runs for every
        # stage every tick, so skip the allow() call on the happy path)
        if br.state == CircuitBreaker.CLOSED:
            return True
        return br.allow(now)

    def record(self, name: str, ok: bool, now: float,
               reason: str = "") -> None:
        """Record one call outcome; drives the breaker and the health."""
        rec = self.components.get(name)
        if rec is None:
            rec = self.register(name)
        br = rec.breaker
        with self._lock:
            if ok:
                # fast path: a healthy component succeeding changes
                # nothing beyond its success counter
                if br.streak == 0 and rec.health is Health.OK:
                    br.successes += 1
                    return
                br.record_success(now)
                self._set_health(rec, Health.OK, now, reason or "recovered")
                return
            br.record_failure(now)
            if br.quarantined:
                self._set_health(rec, Health.FAILED, now, reason)
            else:
                self._set_health(rec, Health.DEGRADED, now, reason)

    # -- observation-driven supervision -------------------------------------

    def observe(self, name: str, health: Health, now: float,
                reason: str = "") -> None:
        """Set health from an external observation, with heal hysteresis:
        an impaired component must look clean ``heal_after`` consecutive
        times before it transitions back to OK."""
        rec = self.register(name)
        with self._lock:
            if health is Health.OK:
                if rec.health is Health.OK:
                    return
                rec.clean_streak += 1
                if rec.clean_streak >= self.heal_after:
                    self._set_health(rec, Health.OK, now,
                                     reason or "recovered")
                    rec.clean_streak = 0
                return
            rec.clean_streak = 0
            self._set_health(rec, health, now, reason)

    # -- explicit transitions (fault injection / recovery) -------------------

    def fail(self, name: str, now: float, reason: str = "") -> None:
        rec = self.register(name)
        with self._lock:
            rec.clean_streak = 0
            self._set_health(rec, Health.FAILED, now, reason)

    def heal(self, name: str, now: float, reason: str = "") -> None:
        rec = self.register(name)
        with self._lock:
            rec.breaker.record_success(now)
            rec.clean_streak = 0
            self._set_health(rec, Health.OK, now, reason or "healed")

    # -- reporting ----------------------------------------------------------

    def report(self) -> dict[str, dict[str, float | str]]:
        """Per-component summary (the introspector / selfmon surface)."""
        return {
            name: rec.summary() for name, rec in sorted(self.components.items())
        }

    def all_ok(self) -> bool:
        return all(
            rec.health is Health.OK for rec in self.components.values()
        )

    def worst(self) -> Health:
        worst = Health.OK
        for rec in self.components.values():
            if rec.health.code > worst.code:
                worst = rec.health
        return worst

    def timeline(self) -> str:
        """Human-readable health timeline (the chaos-scenario output)."""
        if not self.transitions:
            return "(no health transitions)"
        return "\n".join(
            f"t={tr.time:8.0f}s  {tr.describe()}" for tr in self.transitions
        )
