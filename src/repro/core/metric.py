"""Core metric datatypes shared by every layer of the monitoring stack.

The paper (Table I, *Data Sources*) requires that "the meaning of all raw
data should be provided" and that data flow at "maximum fidelity with the
lowest possible overhead".  The types here are the common currency between
data sources, transports, stores, analyses, and visualizations:

``Sample``
    a single (metric, component, time, value) observation — convenient for
    event-driven paths such as log-derived counters.

``SeriesBatch``
    a vectorized column of observations for one metric across many
    components at one synchronized collection time (the NCSA model of
    whole-system synchronized sampling), or for one component across many
    times.  Batches are numpy-backed so that transport and ingest costs
    stay proportional to ``O(len)`` array operations rather than per-sample
    Python objects.

``MetricKey``
    the identity of a series: metric name plus component id.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from .tracectx import TraceContext

__all__ = [
    "MetricKey",
    "Sample",
    "SeriesBatch",
    "merge_batches",
    "samples_to_batches",
]


@dataclass(frozen=True, slots=True)
class MetricKey:
    """Identity of a time series: a metric name and the component it measures.

    ``metric`` is a dotted lowercase path (``node.power_w``,
    ``link.stall_ratio``) registered in :mod:`repro.core.registry`.
    ``component`` is the physical or logical component name in the
    machine's cname scheme (``c0-0c1s4n2`` for a node, ``c0-0`` for a
    cabinet, ``ost3`` for a storage target) or a logical id such as a job
    id (``job.1234``).
    """

    metric: str
    component: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.metric}@{self.component}"


@dataclass(frozen=True, slots=True)
class Sample:
    """One observation of one metric on one component.

    ``time`` is seconds since the epoch of the simulation (floats so that
    sub-second collection intervals are expressible).  ``value`` is always
    a float; non-numeric observations are events, not samples (see
    :mod:`repro.core.events`).
    """

    metric: str
    component: str
    time: float
    value: float

    @property
    def key(self) -> MetricKey:
        return MetricKey(self.metric, self.component)

    def is_finite(self) -> bool:
        """True when the value is a usable number (not NaN/inf)."""
        return math.isfinite(self.value)


class SeriesBatch:
    """A vectorized batch of observations for a single metric.

    A batch carries parallel arrays ``components`` (object array of str),
    ``times`` (float64) and ``values`` (float64).  Two common layouts:

    * *synchronized sweep*: many components, one timestamp each (all equal)
      — the NCSA whole-system collection model;
    * *series chunk*: one component, many timestamps — what a store returns
      from a range query.

    The class enforces equal lengths and exposes cheap numpy views; it
    never copies unless asked (`.copy()`), following the "views not
    copies" guidance for numerical code.

    ``trace`` is an optional :class:`~repro.core.tracectx.TraceContext`
    stamped by the transports on the collection -> queryable path; it is
    delivery metadata, not data, so it never participates in filtering,
    masking, or value operations.
    """

    __slots__ = ("metric", "components", "times", "values", "trace")

    def __init__(
        self,
        metric: str,
        components: Sequence[str] | np.ndarray,
        times: Sequence[float] | np.ndarray,
        values: Sequence[float] | np.ndarray,
        trace: TraceContext | None = None,
    ) -> None:
        comp = np.asarray(components, dtype=object)
        t = np.asarray(times, dtype=np.float64)
        v = np.asarray(values, dtype=np.float64)
        if not (len(comp) == len(t) == len(v)):
            raise ValueError(
                f"batch arrays must be equal length, got "
                f"{len(comp)}/{len(t)}/{len(v)}"
            )
        self.metric = metric
        self.components = comp
        self.times = t
        self.values = v
        self.trace = trace

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[Sample]:
        for c, t, v in zip(self.components, self.times, self.values):
            yield Sample(self.metric, str(c), float(t), float(v))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SeriesBatch({self.metric!r}, n={len(self)})"

    # -- constructors ------------------------------------------------------

    @classmethod
    def sweep(
        cls,
        metric: str,
        time: float,
        components: Sequence[str],
        values: Sequence[float] | np.ndarray,
    ) -> "SeriesBatch":
        """Build a synchronized sweep: one timestamp across many components."""
        n = len(components)
        return cls(metric, components, np.full(n, float(time)), values)

    @classmethod
    def for_component(
        cls,
        metric: str,
        component: str,
        times: Sequence[float] | np.ndarray,
        values: Sequence[float] | np.ndarray,
    ) -> "SeriesBatch":
        """Build a single-component series chunk."""
        n = len(np.asarray(times))
        comp = np.full(n, component, dtype=object)
        return cls(metric, comp, times, values)

    @classmethod
    def empty(cls, metric: str) -> "SeriesBatch":
        return cls(metric, [], [], [])

    # -- operations --------------------------------------------------------

    def copy(self) -> "SeriesBatch":
        return SeriesBatch(
            self.metric,
            self.components.copy(),
            self.times.copy(),
            self.values.copy(),
            trace=self.trace,
        )

    def filter_components(self, keep: Iterable[str]) -> "SeriesBatch":
        """Batch restricted to the given component names (order preserved)."""
        keep_set = set(keep)
        mask = np.fromiter(
            (c in keep_set for c in self.components),
            dtype=bool,
            count=len(self),
        )
        return self._masked(mask)

    def in_window(self, t0: float, t1: float) -> "SeriesBatch":
        """Batch restricted to samples with ``t0 <= time < t1``."""
        mask = (self.times >= t0) & (self.times < t1)
        return self._masked(mask)

    def finite(self) -> "SeriesBatch":
        """Batch with NaN/inf values dropped."""
        return self._masked(np.isfinite(self.values))

    def _masked(self, mask: np.ndarray) -> "SeriesBatch":
        return SeriesBatch(
            self.metric,
            self.components[mask],
            self.times[mask],
            self.values[mask],
        )

    def component_values(self) -> Mapping[str, float]:
        """For a sweep batch, map component -> value (last wins on dupes)."""
        return {
            str(c): float(v) for c, v in zip(self.components, self.values)
        }

    def total(self) -> float:
        """Sum of values; NaNs are ignored (treated as missing)."""
        return float(np.nansum(self.values)) if len(self) else 0.0

    def mean(self) -> float:
        """Mean of finite values; NaN when no finite values exist."""
        finite = self.values[np.isfinite(self.values)]
        return float(finite.mean()) if len(finite) else float("nan")


def merge_batches(batches: Sequence[SeriesBatch]) -> SeriesBatch:
    """Concatenate batches of the same metric into one, sorted by time.

    Raises ``ValueError`` when batches mix metrics, since that would
    silently produce a meaningless series.
    """
    batches = [b for b in batches if len(b)]
    if not batches:
        raise ValueError("merge_batches needs at least one non-empty batch")
    metric = batches[0].metric
    for b in batches[1:]:
        if b.metric != metric:
            raise ValueError(
                f"cannot merge metrics {metric!r} and {b.metric!r}"
            )
    comp = np.concatenate([b.components for b in batches])
    times = np.concatenate([b.times for b in batches])
    values = np.concatenate([b.values for b in batches])
    order = np.argsort(times, kind="stable")
    return SeriesBatch(
        metric, comp[order], times[order], values[order],
        trace=TraceContext.merged(b.trace for b in batches),
    )


def samples_to_batches(samples: Iterable[Sample]) -> list[SeriesBatch]:
    """Group loose samples by metric into batches (transport convenience)."""
    by_metric: dict[str, list[Sample]] = {}
    for s in samples:
        by_metric.setdefault(s.metric, []).append(s)
    out = []
    for metric, group in by_metric.items():
        out.append(
            SeriesBatch(
                metric,
                [s.component for s in group],
                [s.time for s in group],
                [s.value for s in group],
            )
        )
    return out
