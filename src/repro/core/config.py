"""Declarative monitoring configuration.

Table I (*Architecture*): "Multiple flexible data paths should be
anticipated, with changes in data direction and data access easily
configured and changed."  :class:`MonitoringConfig` captures a full
deployment — which collectors at which intervals, storage and response
settings — as plain data that can be serialized, diffed between sites,
and applied to build a pipeline.  ``from_dict``/``to_dict`` round-trip
through JSON so a site can keep its monitoring deployment in version
control (the shareability the paper's sites lack).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.machine import Machine
    from ..pipeline import MonitoringPipeline

__all__ = ["CollectorConfig", "MonitoringConfig"]

#: collector names resolvable by :meth:`MonitoringConfig.build`
KNOWN_COLLECTORS = (
    "node_counters",
    "injection",
    "net_links",
    "sedc",
    "power",
    "fs_probes",
    "ost_counters",
    "queue_stats",
    "environment",
    "benchmark_suite",
    "node_health",
)


@dataclass(frozen=True, slots=True)
class CollectorConfig:
    """One collector's deployment settings."""

    name: str                     # one of KNOWN_COLLECTORS
    interval_s: float = 60.0
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.name not in KNOWN_COLLECTORS:
            raise ValueError(
                f"unknown collector {self.name!r}; known: "
                f"{', '.join(KNOWN_COLLECTORS)}"
            )
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")


@dataclass(slots=True)
class MonitoringConfig:
    """A complete monitoring deployment as data."""

    collectors: list[CollectorConfig] = field(default_factory=list)
    tick_s: float = 10.0
    alert_renotify_s: float = 3600.0
    health_gate: bool = True
    seed: int = 0

    # -- presets ---------------------------------------------------------------

    @classmethod
    def default(cls) -> "MonitoringConfig":
        """The full collector complement at the paper's typical rates:
        one-minute synchronized sweeps (NCSA), 10-minute test suites
        (LANL), 5-minute facility data."""
        minute = [
            "node_counters", "injection", "net_links", "sedc", "power",
            "fs_probes", "ost_counters", "queue_stats",
        ]
        return cls(
            collectors=[CollectorConfig(n, 60.0) for n in minute]
            + [
                CollectorConfig("environment", 300.0),
                CollectorConfig("benchmark_suite", 600.0),
                CollectorConfig("node_health", 600.0),
            ]
        )

    @classmethod
    def minimal(cls) -> "MonitoringConfig":
        """Counters + health only (a small site's starting point)."""
        return cls(
            collectors=[
                CollectorConfig("node_counters", 60.0),
                CollectorConfig("sedc", 60.0),
                CollectorConfig("node_health", 600.0),
            ],
            health_gate=False,
        )

    # -- (de)serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "collectors": [asdict(c) for c in self.collectors],
            "tick_s": self.tick_s,
            "alert_renotify_s": self.alert_renotify_s,
            "health_gate": self.health_gate,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MonitoringConfig":
        return cls(
            collectors=[
                CollectorConfig(**c) for c in data.get("collectors", [])
            ],
            tick_s=float(data.get("tick_s", 10.0)),
            alert_renotify_s=float(data.get("alert_renotify_s", 3600.0)),
            health_gate=bool(data.get("health_gate", True)),
            seed=int(data.get("seed", 0)),
        )

    # -- application ------------------------------------------------------------------

    def build(self, machine: "Machine") -> "MonitoringPipeline":
        """Assemble a pipeline on ``machine`` per this configuration."""
        from ..pipeline import MonitoringPipeline
        from ..sources.benchmarks import BenchmarkSuite
        from ..sources.counters import (
            InjectionCollector,
            NetLinkCollector,
            NodeCounterCollector,
        )
        from ..sources.environment import EnvironmentCollector
        from ..sources.fsprobes import FsProbeCollector, OstCounterCollector
        from ..sources.health import HealthGate, NodeHealthSuite
        from ..sources.powermon import PowerCollector
        from ..sources.queuestats import QueueStatsCollector
        from ..sources.sedc import SedcCollector

        factories = {
            "node_counters": lambda i: NodeCounterCollector(i),
            "injection": lambda i: InjectionCollector(i),
            "net_links": lambda i: NetLinkCollector(i),
            "sedc": lambda i: SedcCollector(i),
            "power": lambda i: PowerCollector(machine, i),
            "fs_probes": lambda i: FsProbeCollector(i),
            "ost_counters": lambda i: OstCounterCollector(i),
            "queue_stats": lambda i: QueueStatsCollector(i),
            "environment": lambda i: EnvironmentCollector(i),
            "benchmark_suite": lambda i: BenchmarkSuite(
                interval_s=i, seed=self.seed
            ),
            "node_health": lambda i: NodeHealthSuite(interval_s=i),
        }
        collectors = [
            factories[c.name](c.interval_s)
            for c in self.collectors
            if c.enabled
        ]
        pipeline = MonitoringPipeline(
            machine,
            collectors=collectors,
            tick_s=self.tick_s,
            renotify_s=self.alert_renotify_s,
        )
        if self.health_gate and machine.scheduler.health_gate is None:
            gate = HealthGate(machine)
            machine.scheduler.health_gate = gate.gate
            pipeline.health_gate = gate
        return pipeline
