"""Event datatypes: the non-numeric telemetry currency of the stack.

Numeric telemetry flows as :class:`repro.core.metric.SeriesBatch`; textual
and discrete telemetry — console messages, hardware errors, scheduler
actions, alerts — flows as :class:`Event`.  The paper's Section IV-A
describes Cray's Event Router Daemon multiplexing many event *classes*
over one stream; we model that with ``Event.kind``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["Severity", "EventKind", "Event"]


class Severity(enum.IntEnum):
    """Syslog-style severities (ordered: higher is more severe)."""

    DEBUG = 0
    INFO = 1
    NOTICE = 2
    WARNING = 3
    ERROR = 4
    CRITICAL = 5
    ALERT = 6
    EMERGENCY = 7


class EventKind(str, enum.Enum):
    """Event classes multiplexed over the event router (ERD analog)."""

    CONSOLE = "console"          # kernel / service console messages
    HWERR = "hwerr"              # hardware error records
    ENV = "env"                  # environmental readings crossing thresholds
    NETWORK = "network"          # HSN link/router events
    FILESYSTEM = "filesystem"    # filesystem server events
    SCHEDULER = "scheduler"      # job start/end/cancel, queue actions
    HEALTH = "health"            # health-check results
    POWER = "power"              # power-cap / power-band events
    ALERT = "alert"              # alerts emitted by the response layer
    ACTION = "action"            # automated responses taken
    TEST = "test"                # benchmark / probe suite results


@dataclass(frozen=True, slots=True)
class Event:
    """A discrete occurrence on a component at a point in time.

    ``time``       seconds since simulation epoch, *as stamped by the
                   producer* — which may be subject to local clock drift
                   (Section III-B warns that drifting local clocks corrupt
                   cross-component association; :mod:`repro.analysis.correlate`
                   quantifies this).
    ``component``  cname of the producing component, or a logical id.
    ``kind``       event class (console, hwerr, ...).
    ``severity``   syslog-style severity.
    ``message``    human-readable single-line message; what a site's log
                   scanners regex against.
    ``fields``     structured payload (the "native format" the paper asks
                   vendors to preserve; never lossily flattened).
    """

    time: float
    component: str
    kind: EventKind
    severity: Severity
    message: str
    fields: Mapping[str, Any] = field(default_factory=dict)

    def syslog_line(self) -> str:
        """Render as a syslog-like text line (transport/logfile format)."""
        return (
            f"{self.time:.3f} {self.component} "
            f"{self.kind.value}.{self.severity.name.lower()}: {self.message}"
        )

    def with_time(self, time: float) -> "Event":
        """Copy of this event restamped at ``time`` (clock-drift modeling)."""
        return Event(
            time=time,
            component=self.component,
            kind=self.kind,
            severity=self.severity,
            message=self.message,
            fields=self.fields,
        )
