"""Stable hashing for data-path placement decisions.

Partitioned transports and sharded stores both need a *stable* mapping
from a string identity (a topic, a series name) to a bucket: the same
name must land in the same bucket in every process and every run, so
routing survives restarts and test replays.  Python's builtin ``hash``
is randomized per process (PYTHONHASHSEED) and therefore unusable for
placement; CRC-32 is deterministic, fast, and well-mixed enough for
bucket counts in the tens.
"""

from __future__ import annotations

import zlib

__all__ = ["stable_hash", "stable_bucket"]


def stable_hash(name: str) -> int:
    """Deterministic 32-bit hash of ``name`` (identical across runs)."""
    return zlib.crc32(name.encode("utf-8"))


def stable_bucket(name: str, buckets: int) -> int:
    """Map ``name`` to one of ``buckets`` bins, stably.

    The mapping changes only when ``buckets`` changes (explicit
    repartitioning), never between runs or processes.
    """
    if buckets < 1:
        raise ValueError("buckets must be >= 1")
    return stable_hash(name) % buckets
