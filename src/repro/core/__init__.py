"""Core datatypes and plumbing shared by every layer of the stack."""

from .clock import DriftingClock, DriftModel, SimClock
from .config import CollectorConfig, MonitoringConfig
from .events import Event, EventKind, Severity
from .hashing import stable_bucket, stable_hash
from .metric import MetricKey, Sample, SeriesBatch, merge_batches
from .registry import MetricClass, MetricRegistry, MetricSpec, default_registry

__all__ = [
    "CollectorConfig",
    "MonitoringConfig",
    "DriftingClock",
    "DriftModel",
    "SimClock",
    "Event",
    "EventKind",
    "Severity",
    "stable_bucket",
    "stable_hash",
    "MetricKey",
    "Sample",
    "SeriesBatch",
    "merge_batches",
    "MetricClass",
    "MetricRegistry",
    "MetricSpec",
    "default_registry",
]
