"""Compact per-batch trace context: the freshness half of accounting.

PR 5's :mod:`repro.core.ledger` answers "did every published point
arrive?"; this module answers "how *stale* was it when it became
queryable, and which hop did the latency live in?"  Every tracked
:class:`~repro.core.metric.SeriesBatch` carries one
:class:`TraceContext` — an origin tick plus a bounded vector of
``(hop_id, t_min, t_max, count)`` stamps written by the transports and
the store's ingest edge:

* flat bus:        ``collect -> publish -> ingest``
* partitioned bus: ``collect -> enqueue -> pump -> ingest``
* aggregator tree: ``collect -> leaf -> merge -> root -> ingest``

Fan-in stays exact the same way the ledger does: when the tree merges
batches, :meth:`TraceContext.merged` aggregates the parents' stamps per
hop as (min, max, count), so the merged context still brackets every
constituent point.  All latency folding reads the ``t_min`` path (the
oldest point's journey); consecutive deltas then *telescope* — the sum
of per-hop latencies equals the end-to-end collected-to-queryable
latency identically, which the ``python -m repro slo`` waterfall
asserts on the simulated clock.

Timestamps are simulated-clock seconds (``machine.now``), never wall
time: the context measures data-path staleness, not host speed.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

__all__ = [
    "HOP_COLLECT",
    "HOP_PUBLISH",
    "HOP_ENQUEUE",
    "HOP_PUMP",
    "HOP_LEAF",
    "HOP_MERGE",
    "HOP_ROOT",
    "HOP_INGEST",
    "MAX_HOPS",
    "TraceContext",
]

#: hop identifiers stamped along the three transport tiers
HOP_COLLECT = "collect"    # scheduler built the batch (collected-at)
HOP_PUBLISH = "publish"    # flat bus synchronous fan-out
HOP_ENQUEUE = "enqueue"    # partitioned bus accepted into a partition
HOP_PUMP = "pump"          # partitioned bus drained the partition
HOP_LEAF = "leaf"          # aggregator tree buffered at a leaf
HOP_MERGE = "merge"        # aggregator tree coalesced the window
HOP_ROOT = "root"          # aggregator tree forwarded into the root bus
HOP_INGEST = "ingest"      # store accepted the batch (queryable-at)

#: hop-vector bound: the longest built-in path is 5 hops, so 8 leaves
#: headroom for custom tiers while keeping the context fixed-size
MAX_HOPS = 8


class TraceContext:
    """Origin tick plus a bounded per-hop (min, max, count) stamp vector.

    ``hops`` is a list of ``[hop_id, t_min, t_max, count]`` entries in
    traversal order.  A freshly stamped hop has ``t_min == t_max`` and
    ``count == 1``; after :meth:`merged`, an entry brackets every parent
    context's stamp for that hop and ``count`` sums how many contexts
    contributed.  Stamping the same hop twice (chaos duplication, or a
    multi-level tree re-coalescing in one pump) widens the existing
    entry instead of appending, so the vector length is bounded by the
    path length, not the delivery count.
    """

    __slots__ = ("origin_tick", "hops", "truncated")

    def __init__(
        self,
        origin_tick: int = 0,
        hops: Sequence[Sequence] | None = None,
        truncated: int = 0,
    ) -> None:
        self.origin_tick = int(origin_tick)
        self.hops: list[list] = [
            [str(h[0]), float(h[1]), float(h[2]), int(h[3])]
            for h in (hops or ())
        ]
        self.truncated = int(truncated)

    # -- constructors ------------------------------------------------------

    @classmethod
    def start(
        cls, t: float, tick: int = 0, hop: str = HOP_COLLECT
    ) -> "TraceContext":
        """Open a context at collection time ``t`` (simulated seconds)."""
        # hot path (one per published batch): build without the __init__
        # normalization pass
        ctx = cls.__new__(cls)
        ctx.origin_tick = tick
        t = float(t)
        ctx.hops = [[hop, t, t, 1]]
        ctx.truncated = 0
        return ctx

    @classmethod
    def merged(
        cls, contexts: Iterable["TraceContext | None"]
    ) -> "TraceContext | None":
        """Aggregate parent contexts hop-wise as (min, max, sum-count).

        Hop order is first-seen across parents (all built-in paths agree
        on order, so this is the common traversal order).  Returns a new
        context; parents are never mutated.  ``None`` parents (untraced
        batches mixed into a merge) are skipped; all-None returns None.
        """
        ctxs = [c for c in contexts if c is not None]
        if not ctxs:
            return None
        order: list[str] = []
        agg: dict[str, list] = {}
        truncated = 0
        for c in ctxs:
            truncated += c.truncated
            for hop, t_min, t_max, count in c.hops:
                cur = agg.get(hop)
                if cur is None:
                    agg[hop] = [hop, t_min, t_max, count]
                    order.append(hop)
                else:
                    if t_min < cur[1]:
                        cur[1] = t_min
                    if t_max > cur[2]:
                        cur[2] = t_max
                    cur[3] += count
        return cls(
            origin_tick=min(c.origin_tick for c in ctxs),
            hops=[agg[h] for h in order],
            truncated=truncated,
        )

    # -- stamping ----------------------------------------------------------

    def stamp(self, hop: str, t: float) -> "TraceContext":
        """Record traversal of ``hop`` at simulated time ``t``.

        Re-stamping the trailing hop widens its (min, max) bracket —
        duplicates and repeated coalesce levels stay idempotent — and a
        vector already at :data:`MAX_HOPS` counts the stamp in
        ``truncated`` instead of growing, so the context stays compact
        no matter what a custom transport does.
        """
        t = float(t)
        hops = self.hops
        if hops and hops[-1][0] == hop:
            last = hops[-1]
            if t < last[1]:
                last[1] = t
            if t > last[2]:
                last[2] = t
            return self
        if len(hops) >= MAX_HOPS:
            self.truncated += 1
            return self
        hops.append([hop, t, t, 1])
        return self

    # -- latency folding ---------------------------------------------------

    def collected_at(self) -> float:
        """Earliest collection stamp (NaN when unstamped)."""
        return self.hops[0][1] if self.hops else float("nan")

    def queryable_at(self) -> float:
        """Stamp of the final hop's oldest path (NaN when unstamped)."""
        return self.hops[-1][1] if self.hops else float("nan")

    def end_to_end(self) -> float:
        """Ingest-to-queryable latency of the oldest point's journey."""
        if len(self.hops) < 2:
            return 0.0
        return self.hops[-1][1] - self.hops[0][1]

    def hop_latencies(self) -> list[tuple[str, float]]:
        """``(hop, delta_s)`` per traversed hop along the ``t_min`` path.

        The delta attributed to a hop is the time between the previous
        hop's stamp and this one's.  Because each delta is a difference
        of consecutive stamps, the deltas telescope: their sum equals
        :meth:`end_to_end` exactly (same floats, same subtractions on
        the simulated clock's integral times).
        """
        out: list[tuple[str, float]] = []
        prev: float | None = None
        for hop, t_min, _t_max, _count in self.hops:
            if prev is not None:
                out.append((hop, t_min - prev))
            prev = t_min
        return out

    def worst_hop(self) -> tuple[str, float] | None:
        """The hop carrying the largest latency share, or None."""
        lats = self.hop_latencies()
        if not lats:
            return None
        return max(lats, key=lambda hl: hl[1])

    def path(self) -> str:
        """Hop traversal as ``collect->enqueue->pump->ingest``."""
        return "->".join(h[0] for h in self.hops)

    def describe(self) -> str:
        """One-line waterfall: ``collect@600 ->enqueue+0 ->pump+20``."""
        if not self.hops:
            return "(unstamped)"
        first = self.hops[0]
        parts = [f"{first[0]}@{first[1]:g}"]
        for hop, delta in self.hop_latencies():
            parts.append(f"->{hop}+{delta:g}")
        return "".join(parts)

    # -- wire form ---------------------------------------------------------

    def to_obj(self) -> dict:
        """JSON-able form carried inside batch payload encodings."""
        obj: dict = {"tick": self.origin_tick, "hops": self.hops}
        if self.truncated:
            obj["trunc"] = self.truncated
        return obj

    @classmethod
    def from_obj(cls, obj: dict | None) -> "TraceContext | None":
        if obj is None:
            return None
        return cls(
            origin_tick=obj.get("tick", 0),
            hops=obj.get("hops", ()),
            truncated=obj.get("trunc", 0),
        )

    # -- plumbing ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceContext):
            return NotImplemented
        return (
            self.origin_tick == other.origin_tick
            and self.hops == other.hops
            and self.truncated == other.truncated
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"TraceContext(tick={self.origin_tick}, "
                f"{self.describe()})")

    def is_monotone(self) -> bool:
        """True when both stamp paths never run backwards in time."""
        for prev, cur in zip(self.hops, self.hops[1:]):
            if cur[1] < prev[1] or cur[2] < prev[2]:
                return False
        return all(
            h[1] <= h[2] and math.isfinite(h[1]) for h in self.hops
        )
