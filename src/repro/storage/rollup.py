"""Rollup pyramids: pre-materialized downsample levels per series.

The serving plane (``repro.serve``) answers dashboard-shaped
``downsample``/``aggregate_across`` queries from pre-aggregated rollup
levels instead of re-scanning raw series — the DCDB "continuous
downsampling at ingest time" pattern that keeps facility-scale query
latency flat.  Each sealed chunk is folded once per level at seal time
into per-bucket *partial columns*:

    (bucket, count, sum, min, max, t_last, v_last, seq_last)

From those columns every agg the store supports is derivable exactly:
``count``/``min``/``max`` trivially, ``sum``/``mean`` up to float
summation order (the same caveat :class:`~repro.storage.tsdb.ChunkSummary`
already carries), and ``last`` via the (t_last, seq) winner rule that
reproduces the stable time-sort of the raw path bit-for-bit.

This module is the *one place* that defines bucket-grid normalization
(:func:`bucket_anchor`) and partial-column folding/merging
(:func:`fold_partials` / :func:`reduce_partials`); the raw query path in
``storage/tsdb.py`` and the pyramid planner both build on it, which is
what makes the exactness oracle in the property suite meaningful.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = [
    "DEFAULT_LEVELS",
    "MAX_PLANNER_TIME",
    "SeriesPyramid",
    "bucket_anchor",
    "choose_level",
    "fold_partials",
    "reduce_partials",
    "series_first_time",
    "series_window_partials",
]

#: raw -> 10 s -> 1 min -> 1 h, the rollup ladder from the ROADMAP;
#: coarser levels answer the same query from fewer rows
DEFAULT_LEVELS: tuple[float, ...] = (10.0, 60.0, 3600.0)

#: planner eligibility guard on |anchor| and step: below this magnitude
#: the float expressions ``floor((t - anchor) / step)`` and
#: ``floor(t / level)`` both compute the exact real-arithmetic floor for
#: millisecond-grid sample times, so raw and pyramid bucket
#: classification provably agree (grid boundaries are exact integers,
#: samples sit >= ~1e-3 s from them, rounding error is <= ~1e-7 s)
MAX_PLANNER_TIME: float = 2.0 ** 35


def bucket_anchor(t0: float, step: float) -> float:
    """The step-grid anchor at or below ``t0``: ``floor(t0/step)*step``.

    Every bucketing path (raw ``_bucket_agg``, summary-pruned
    downsample, pyramid planner) anchors its grid here, so a query
    window that is not step-aligned still lands on the *same* bucket
    boundaries everywhere.  The first bucket may therefore start before
    ``t0`` (the window filter itself stays ``[t0, t1)``) — the familiar
    ``GROUP BY time`` convention.
    """
    return float(np.floor(t0 / step) * step)


def _empty_partials() -> tuple[np.ndarray, ...]:
    z = np.empty(0, dtype=np.int64)
    f = np.empty(0, dtype=np.float64)
    return (z, z, f, f, f, f, f, z)


def fold_partials(
    t: np.ndarray,
    v: np.ndarray,
    anchor: float,
    step: float,
    seq: np.ndarray | None = None,
    seq_base: int = 0,
) -> tuple[np.ndarray, ...]:
    """One reduceat pass folding time-sorted samples into partial columns.

    Returns ``(b, cnt, vsum, vmin, vmax, t_last, v_last, seq_last)``,
    one row per occupied bucket of the ``(anchor, step)`` grid.  ``seq``
    optionally gives each sample's position in the series' stable time
    order; when omitted the samples are taken as consecutive from
    ``seq_base`` (the sealed-chunk case).
    """
    if not len(t):
        return _empty_partials()
    buckets = np.floor((t - anchor) / step).astype(np.int64)
    cuts = np.flatnonzero(buckets[1:] != buckets[:-1]) + 1
    starts = np.concatenate(([0], cuts))
    last = np.append(starts[1:], len(t)) - 1
    seq_last = (
        seq[last].astype(np.int64) if seq is not None else seq_base + last
    )
    return (
        buckets[starts],
        (last + 1 - starts).astype(np.int64),
        np.add.reduceat(v, starts),
        np.minimum.reduceat(v, starts),
        np.maximum.reduceat(v, starts),
        t[last],
        v[last],
        seq_last,
    )


def reduce_partials(
    pieces: Sequence[tuple[np.ndarray, ...]],
    anchor: float,
    step: float,
    agg: str,
    piece_comp: Sequence[int] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge partial-column pieces into final ``(bucket_t, agg_v)``.

    The merge order is ``(bucket, t_last[, comp], seq)`` so the last row
    of each bucket group is the stable-time-sort winner for ``last`` —
    exactly the row the raw decompress-and-sort path would pick.
    ``piece_comp`` ranks each piece's source series for cross-component
    aggregation, reproducing the raw path's stable concat order.
    """
    keep = [p for p in pieces if len(p[0])]
    if not keep:
        return np.empty(0), np.empty(0)
    comp = None
    if piece_comp is not None:
        comp = np.concatenate([
            np.full(len(p[0]), c, dtype=np.int64)
            for p, c in zip(pieces, piece_comp)
            if len(p[0])
        ])
    b, cnt, vsum, vmin, vmax, t_last, v_last, seq = (
        np.concatenate([p[i] for p in keep]) for i in range(8)
    )
    order = (
        np.lexsort((seq, t_last, b)) if comp is None
        else np.lexsort((seq, comp, t_last, b))
    )
    b, cnt, vsum = b[order], cnt[order], vsum[order]
    vmin, vmax, v_last = vmin[order], vmax[order], v_last[order]
    cuts = np.flatnonzero(b[1:] != b[:-1]) + 1
    starts = np.concatenate(([0], cuts))
    ends = np.append(starts[1:], len(b))
    out_t = anchor + b[starts] * step
    if agg == "sum":
        out_v = np.add.reduceat(vsum, starts)
    elif agg == "mean":
        out_v = (np.add.reduceat(vsum, starts)
                 / np.add.reduceat(cnt, starts))
    elif agg == "min":
        out_v = np.minimum.reduceat(vmin, starts)
    elif agg == "max":
        out_v = np.maximum.reduceat(vmax, starts)
    elif agg == "last":
        out_v = v_last[ends - 1]
    else:                              # count
        out_v = np.add.reduceat(cnt, starts).astype(np.float64)
    return out_t, out_v


class SeriesPyramid:
    """Per-series rollup levels, folded incrementally at chunk-seal time.

    Each seal appends one partial-column *piece* per level (a single
    reduceat pass over the chunk, anchored at 0 so every query grid that
    divides the level reuses the same rows).  Reads see a per-level
    merged, bucket-sorted view that is materialized lazily and cached
    until the next seal — so steady-state reads are a binary search plus
    a slice, and ingest pays one O(chunk) fold per level.
    """

    __slots__ = ("levels", "samples_folded", "_pieces", "_merged")

    def __init__(self, levels: Sequence[float] = DEFAULT_LEVELS) -> None:
        lv = tuple(sorted(float(x) for x in levels))
        if not lv or any(x <= 0 for x in lv):
            raise ValueError("pyramid levels must be positive")
        self.levels = lv
        self.samples_folded = 0
        self._pieces: dict[float, list[tuple[np.ndarray, ...]]] = {
            x: [] for x in lv
        }
        self._merged: dict[float, tuple[np.ndarray, ...]] = {}

    def add_sealed(self, t: np.ndarray, v: np.ndarray,
                   seq_base: int) -> None:
        """Fold one sealed chunk (time-sorted, ms-rounded) into every level.

        ``seq_base`` is the number of samples sealed before this chunk in
        the series' chunk-list order, so seq numbers reproduce the stable
        time-sort of the raw read path.
        """
        if not len(t):
            return
        for lv in self.levels:
            self._pieces[lv].append(
                fold_partials(t, v, 0.0, lv, seq_base=seq_base)
            )
            self._merged.pop(lv, None)
        self.samples_folded += len(t)

    def level_columns(self, level: float) -> tuple[np.ndarray, ...]:
        """Merged partial columns of one level, sorted by bucket id."""
        cols = self._merged.get(level)
        if cols is None:
            cols = _merge_pieces(tuple(self._pieces[level]))
            self._merged[level] = cols
        return cols

    def rows(self, level: float) -> int:
        return len(self.level_columns(level)[0])

    def export_state(self) -> dict:
        """Snapshot-serializable state (the disk-tier manifest payload).

        Pieces are merged per level first, so the manifest carries one
        consolidated bucket-sorted piece per level instead of one per
        seal — and restore never refolds from a chunk decompress.
        """
        return {
            "levels": self.levels,
            "samples_folded": self.samples_folded,
            "pieces": {lv: self.level_columns(lv) for lv in self.levels},
        }

    @classmethod
    def from_state(cls, state: dict) -> "SeriesPyramid":
        """Inverse of :meth:`export_state`."""
        p = cls(state["levels"])
        p.samples_folded = int(state["samples_folded"])
        for lv, cols in state["pieces"].items():
            if len(cols[0]):
                p._pieces[float(lv)].append(tuple(cols))
        return p


def _merge_pieces(
    pieces: Sequence[tuple[np.ndarray, ...]],
) -> tuple[np.ndarray, ...]:
    """Collapse per-seal pieces into one row per bucket (sorted by bucket)."""
    pieces = [p for p in pieces if len(p[0])]
    if not pieces:
        return _empty_partials()
    if len(pieces) == 1:
        return pieces[0]       # a chunk's fold is already bucket-sorted
    b, cnt, vsum, vmin, vmax, t_last, v_last, seq = (
        np.concatenate([p[i] for p in pieces]) for i in range(8)
    )
    order = np.lexsort((seq, t_last, b))
    b, cnt, vsum = b[order], cnt[order], vsum[order]
    vmin, vmax = vmin[order], vmax[order]
    t_last, v_last, seq = t_last[order], v_last[order], seq[order]
    cuts = np.flatnonzero(b[1:] != b[:-1]) + 1
    starts = np.concatenate(([0], cuts))
    last = np.append(starts[1:], len(b)) - 1
    return (
        b[starts],
        np.add.reduceat(cnt, starts),
        np.add.reduceat(vsum, starts),
        np.minimum.reduceat(vmin, starts),
        np.maximum.reduceat(vmax, starts),
        t_last[last],
        v_last[last],
        seq[last],
    )


def choose_level(
    levels: Sequence[float], step: float, anchor: float
) -> float | None:
    """Coarsest level that answers an ``(anchor, step)`` grid exactly.

    Eligible when ``step`` is an exact integer multiple of the level and
    ``anchor`` sits exactly on the level's own grid — checked in exact
    float arithmetic, never approximately — and both magnitudes are
    inside :data:`MAX_PLANNER_TIME` (the bucket-classification proof
    bound).  Returns ``None`` when no level fits (caller falls back to
    the raw path).
    """
    if not (abs(anchor) <= MAX_PLANNER_TIME
            and 0.0 < step <= MAX_PLANNER_TIME):
        return None
    for lv in sorted(levels, reverse=True):
        m = round(step / lv)
        if m >= 1 and m * lv == step and round(anchor / lv) * lv == anchor:
            return lv
    return None


def series_first_time(series) -> float:
    """Earliest sample time in a series (sealed spans + open head).

    Used to resolve ``t0=-inf`` aggregation windows to a concrete grid
    anchor; ``inf`` when the series is empty.
    """
    lo = math.inf
    for span in series.chunk_spans:
        if span[0] < lo:
            lo = span[0]
    if series.head_t:
        head_lo = min(series.head_t)
        if head_lo < lo:
            lo = head_lo
    return lo


def series_window_partials(
    series,
    cache,
    level: float,
    t0: float,
    t1: float,
    step: float,
    anchor: float,
) -> list[tuple[np.ndarray, ...]] | None:
    """Partial-column pieces answering one series over ``[t0, t1)``.

    Output buckets wholly inside the window are answered from the
    pyramid ``level`` (a binary search + slice over merged rollup rows);
    the at-most-two window-partial edge buckets come from raw sub-range
    reads; open-head samples overlapping the full region merge in with
    seq numbers above every sealed sample.  Returns ``None`` when the
    window contains no full bucket — the caller falls back to the raw
    path rather than reassembling the whole answer from edges.

    Requires ``anchor == bucket_anchor(max(t0, first_sample), step)`` and
    a ``level`` accepted by :func:`choose_level`; under those guards the
    pieces reduce to *exactly* the raw-path answer (see the property
    suite's oracle).
    """
    m = int(round(step / level))
    a = int(round(anchor / level))      # anchor in level-bucket units
    j_lo = 0 if t0 <= anchor else 1     # anchor <= t0 by construction
    jf = int(np.floor((t1 - anchor) / step)) if np.isfinite(t1) else None
    full_lo = anchor + j_lo * step
    full_hi = np.inf if jf is None else anchor + jf * step
    if not full_hi > full_lo:           # no full bucket in the window
        return None
    pieces: list[tuple[np.ndarray, ...]] = []
    cols = series.pyramid.level_columns(level)
    lb = cols[0]
    i0 = int(np.searchsorted(lb, a + j_lo * m, side="left"))
    i1 = (
        len(lb) if jf is None
        else int(np.searchsorted(lb, a + jf * m, side="left"))
    )
    if i1 > i0:
        out_b = (lb[i0:i1] - a) // m    # exact: int64 grid arithmetic
        pieces.append((out_b,) + tuple(c[i0:i1] for c in cols[1:]))
    # edge buckets own their output buckets exclusively, so a raw
    # sub-range read (sealed + head, stable time-sorted) is the oracle
    if t0 < full_lo:
        et, ev = series.read(t0, full_lo, cache)
        if len(et):
            pieces.append(fold_partials(et, ev, anchor, step))
    if jf is not None and t1 > full_hi:
        et, ev = series.read(full_hi, t1, cache)
        if len(et):
            pieces.append(fold_partials(et, ev, anchor, step))
    if series.head_t:
        ht = np.asarray(series.head_t)
        hv = np.asarray(series.head_v)
        mask = (ht >= full_lo) & (ht < full_hi)
        if mask.any():
            seq = series.n_sealed_samples + np.flatnonzero(mask)
            ht, hv = ht[mask], hv[mask]
            order = np.argsort(ht, kind="stable")
            pieces.append(
                fold_partials(ht[order], hv[order], anchor, step,
                              seq=seq[order])
            )
    return pieces
