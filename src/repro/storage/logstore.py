"""Indexed log/event store (the Elasticsearch/Splunk class of Section IV-C).

Sites index logs so that "detection of well-known log lines" (Section
III-B) is a query, not a scan.  This store keeps events in arrival order
and maintains an inverted index from lowercased message/component/kind
tokens to event ids, supporting:

* boolean AND term queries with time-range restriction,
* regex post-filtering (the Splunk/SEC idiom),
* severity floors,
* occurrence counting by component / kind / time bucket — the "variation
  in occurrences of log lines" analyses.

The index is the storage cost Splunk's pricing model charges for; the
storage-comparison bench measures it directly.
"""

from __future__ import annotations

import re
from collections import Counter, defaultdict
from typing import Iterable, Sequence

import numpy as np

from ..core.events import Event, EventKind, Severity

__all__ = ["LogStore", "tokenize"]

_TOKEN_RE = re.compile(r"[a-z0-9_.\-/]+")


def tokenize(text: str) -> list[str]:
    """Lowercase word tokens; punctuation splits, cnames survive intact."""
    return _TOKEN_RE.findall(text.lower())


class LogStore:
    """Append-only event store with an inverted token index."""

    def __init__(self) -> None:
        self._events: list[Event] = []
        self._times: list[float] = []
        self._index: dict[str, list[int]] = defaultdict(list)

    # -- ingest -----------------------------------------------------------------

    def append(self, event: Event) -> int:
        """Store one event; returns its id."""
        eid = len(self._events)
        self._events.append(event)
        self._times.append(event.time)
        seen: set[str] = set()
        for tok in tokenize(event.message):
            if tok not in seen:
                self._index[tok].append(eid)
                seen.add(tok)
        for extra in (event.component.lower(), event.kind.value,
                      event.severity.name.lower()):
            if extra not in seen:
                self._index[extra].append(eid)
                seen.add(extra)
        return eid

    def append_many(self, events: Iterable[Event]) -> int:
        n = 0
        for e in events:
            self.append(e)
            n += 1
        return n

    def __len__(self) -> int:
        return len(self._events)

    def get(self, eid: int) -> Event:
        return self._events[eid]

    # -- query -----------------------------------------------------------------

    def search(
        self,
        terms: Sequence[str] = (),
        t0: float = -np.inf,
        t1: float = np.inf,
        kind: EventKind | None = None,
        min_severity: Severity | None = None,
        component: str | None = None,
        regex: str | None = None,
        limit: int | None = None,
    ) -> list[Event]:
        """Boolean-AND term search with filters, in time order.

        ``terms`` are matched against the token index (cheap); ``regex``
        is applied to surviving messages (expensive, applied last).
        """
        ids = self._candidate_ids(terms, kind, component, min_severity)
        pattern = re.compile(regex) if regex else None
        out: list[Event] = []
        for eid in ids:
            ev = self._events[eid]
            if not (t0 <= ev.time < t1):
                continue
            if pattern is not None and not pattern.search(ev.message):
                continue
            out.append(ev)
            if limit is not None and len(out) >= limit:
                break
        return out

    def _candidate_ids(
        self,
        terms: Sequence[str],
        kind: EventKind | None,
        component: str | None,
        min_severity: Severity | None,
    ) -> Iterable[int]:
        postings: list[list[int]] = []
        for term in terms:
            toks = tokenize(term)
            for tok in toks:
                lst = self._index.get(tok)
                if lst is None:
                    return []  # a missing term kills the AND
                postings.append(lst)
        if kind is not None:
            lst = self._index.get(kind.value)
            if lst is None:
                return []
            postings.append(lst)
        if component is not None:
            lst = self._index.get(component.lower())
            if lst is None:
                return []
            postings.append(lst)
        if not postings:
            candidates: Iterable[int] = range(len(self._events))
        else:
            postings.sort(key=len)
            acc = set(postings[0])
            for lst in postings[1:]:
                acc &= set(lst)
                if not acc:
                    return []
            candidates = sorted(acc)
        if min_severity is not None:
            candidates = (
                i
                for i in candidates
                if self._events[i].severity >= min_severity
            )
        return candidates

    def scan(self, regex: str, t0: float = -np.inf,
             t1: float = np.inf) -> list[Event]:
        """Full scan with regex only — the naive baseline the index beats
        (also the correctness oracle for property tests)."""
        pattern = re.compile(regex)
        return [
            e
            for e in self._events
            if t0 <= e.time < t1 and pattern.search(e.message)
        ]

    # -- occurrence analytics ----------------------------------------------------

    def count_by_component(self, **kw) -> Counter:
        return Counter(e.component for e in self.search(**kw))

    def count_by_kind(self, **kw) -> Counter:
        return Counter(e.kind.value for e in self.search(**kw))

    def occurrence_series(
        self,
        terms: Sequence[str],
        t0: float,
        t1: float,
        bucket_s: float = 300.0,
        **kw,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Occurrences per time bucket — the 'variation in occurrences of
        log lines' primitive.  Returns (bucket_starts, counts) including
        empty buckets."""
        events = self.search(terms, t0=t0, t1=t1, **kw)
        n_buckets = max(1, int(np.ceil((t1 - t0) / bucket_s)))
        counts = np.zeros(n_buckets, dtype=np.int64)
        for e in events:
            counts[min(int((e.time - t0) // bucket_s), n_buckets - 1)] += 1
        starts = t0 + np.arange(n_buckets) * bucket_s
        return starts, counts

    # -- footprint -----------------------------------------------------------------

    def index_bytes(self) -> int:
        """Approximate index footprint (Splunk's pricing axis)."""
        return sum(
            len(tok) + 8 * len(ids) for tok, ids in self._index.items()
        )

    def raw_bytes(self) -> int:
        return sum(len(e.syslog_line()) for e in self._events)
