"""Job allocation index: per-job extraction of telemetry.

Section III-B: "Per-job analysis requires storing and extraction of job
allocations and timeframes, which adds to storage and query complexity."
The :class:`JobIndex` is that storage: it records which nodes each job
held over which interval, answers attribution questions (Figure 4's
"which job caused this I/O spike"), and extracts per-job node series
from a :class:`~repro.storage.tsdb.TimeSeriesStore` (Figure 5's per-job
multi-metric timeseries).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.metric import SeriesBatch
from .tsdb import TimeSeriesStore

__all__ = ["Allocation", "JobIndex"]


@dataclass(frozen=True, slots=True)
class Allocation:
    """One job's tenure on a set of nodes."""

    job_id: int
    app: str
    nodes: tuple[str, ...]
    start: float
    end: float | None          # None while running
    user: str = ""             # owner, for scoped data release

    def active_at(self, t: float) -> bool:
        return self.start <= t and (self.end is None or t < self.end)

    def overlaps(self, t0: float, t1: float) -> bool:
        end = np.inf if self.end is None else self.end
        return self.start < t1 and end > t0


class JobIndex:
    """Allocation records + per-job telemetry extraction."""

    def __init__(self) -> None:
        self._allocs: dict[int, Allocation] = {}
        self._by_node: dict[str, list[int]] = {}

    # -- recording ---------------------------------------------------------------

    def record_start(
        self,
        job_id: int,
        app: str,
        nodes: Sequence[str],
        start: float,
        user: str = "",
    ) -> None:
        if job_id in self._allocs:
            raise ValueError(f"job {job_id} already recorded")
        alloc = Allocation(job_id, app, tuple(nodes), start, None, user)
        self._allocs[job_id] = alloc
        for n in nodes:
            self._by_node.setdefault(n, []).append(job_id)

    def record_end(self, job_id: int, end: float) -> None:
        a = self._allocs[job_id]
        if a.end is not None:
            raise ValueError(f"job {job_id} already ended")
        self._allocs[job_id] = Allocation(
            a.job_id, a.app, a.nodes, a.start, end, a.user
        )

    def jobs_of_user(self, user: str) -> list[Allocation]:
        return [a for a in self._allocs.values() if a.user == user]

    def get(self, job_id: int) -> Allocation:
        return self._allocs[job_id]

    def __contains__(self, job_id: int) -> bool:
        return job_id in self._allocs

    def __len__(self) -> int:
        return len(self._allocs)

    # -- attribution queries --------------------------------------------------------

    def jobs_active_at(self, t: float) -> list[Allocation]:
        return [a for a in self._allocs.values() if a.active_at(t)]

    def jobs_overlapping(self, t0: float, t1: float) -> list[Allocation]:
        return [a for a in self._allocs.values() if a.overlaps(t0, t1)]

    def job_on_node_at(self, node: str, t: float) -> Allocation | None:
        for jid in self._by_node.get(node, ()):
            a = self._allocs[jid]
            if a.active_at(t):
                return a
        return None

    def concurrent_with(self, job_id: int) -> list[Allocation]:
        """Allocations overlapping the given job's tenure (HLRS input:
        'information on concurrently running applications')."""
        me = self._allocs[job_id]
        end = np.inf if me.end is None else me.end
        return [
            a
            for a in self._allocs.values()
            if a.job_id != job_id and a.overlaps(me.start, end)
        ]

    # -- per-job telemetry extraction --------------------------------------------------

    def extract_job_series(
        self,
        tsdb: TimeSeriesStore,
        job_id: int,
        metric: str,
    ) -> dict[str, SeriesBatch]:
        """Per-node series of ``metric`` over the job's tenure."""
        a = self._allocs[job_id]
        end = np.inf if a.end is None else a.end
        return {
            n: tsdb.query(metric, n, a.start, end) for n in a.nodes
        }

    def condense_job_series(
        self,
        tsdb: TimeSeriesStore,
        job_id: int,
        metric: str,
        agg: str = "sum",
        step: float = 60.0,
    ) -> SeriesBatch:
        """One condensed series per job: metric aggregated over its nodes.

        Figure 5's "summing and averaging over nodes enables condensation
        of high dimensional data".
        """
        a = self._allocs[job_id]
        end = np.inf if a.end is None else a.end
        batch = tsdb.aggregate_across(
            metric, list(a.nodes), a.start, end, step=step, agg=agg
        )
        return SeriesBatch.for_component(
            metric, f"job.{job_id}", batch.times, batch.values
        )

    def runtimes_by_app(self) -> dict[str, list[float]]:
        """Completed-job runtimes grouped by application (HLRS input)."""
        out: dict[str, list[float]] = {}
        for a in self._allocs.values():
            if a.end is not None:
                out.setdefault(a.app, []).append(a.end - a.start)
        return out
