"""Numpy-backed time-series store with Gorilla-style chunk compression.

The InfluxDB-class store of Section IV-C: ALCF "chose InfluxDB for its
superior data compression and query performance for high-volume time
series data compared to Cray's PMDB".  This store provides the behaviours
that comparison turns on:

* append-optimized ingest of :class:`~repro.core.metric.SeriesBatch`es,
* per-series columnar chunks sealed at a fixed size and compressed with
  delta-of-delta timestamps + XOR float packing (the Facebook Gorilla
  scheme, the same family InfluxDB's TSM files use),
* range queries and server-side downsampling,
* footprint/compression statistics for the storage-comparison bench.

Chunks are transparently decompressed on query; the open (mutable) head
chunk is queried in place.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from ..core.metric import MetricKey, SeriesBatch

__all__ = [
    "compress_chunk",
    "decompress_chunk",
    "SeriesQueryMixin",
    "TimeSeriesStore",
    "StoreStats",
]


# --------------------------------------------------------------------------
# chunk codec: delta-of-delta timestamps (varint) + XOR-packed float values
# --------------------------------------------------------------------------

def _zigzag(n: int) -> int:
    return (n << 1) ^ (n >> 63)


def _unzigzag(z: int) -> int:
    return (z >> 1) ^ -(z & 1)


def _write_varint(out: bytearray, value: int) -> None:
    v = _zigzag(value)
    while True:
        b = v & 0x7F
        v >>= 7
        if v:
            out.append(b | 0x80)
        else:
            out.append(b)
            return


def _read_varint(buf: bytes, pos: int) -> tuple[int, int]:
    shift = 0
    result = 0
    while True:
        b = buf[pos]
        pos += 1
        result |= (b & 0x7F) << shift
        if not b & 0x80:
            return _unzigzag(result), pos
        shift += 7


def compress_chunk(times: np.ndarray, values: np.ndarray) -> bytes:
    """Compress one sealed chunk.

    Timestamps are stored at millisecond resolution as zig-zag varint
    delta-of-deltas — regular collection intervals (the common case:
    synchronized sweeps every 60 s) collapse to one byte per sample.
    Values are stored XOR-ed against the previous value with a
    byte-aligned (leading-zero-bytes, significant-bytes) header; runs of
    identical values (idle gauges) cost two bytes each.
    """
    n = len(times)
    if n == 0:
        return struct.pack("<I", 0)
    ts_ms = np.round(np.asarray(times, dtype=np.float64) * 1000.0).astype(
        np.int64
    )
    out = bytearray(struct.pack("<I", n))
    # first timestamp raw, first delta, then delta-of-deltas
    out += struct.pack("<q", int(ts_ms[0]))
    prev_delta = 0
    prev_ts = int(ts_ms[0])
    for i in range(1, n):
        t = int(ts_ms[i])
        delta = t - prev_ts
        _write_varint(out, delta - prev_delta)
        prev_delta = delta
        prev_ts = t

    bits = np.asarray(values, dtype=np.float64).view(np.uint64)
    out += struct.pack("<Q", int(bits[0]))
    prev = int(bits[0])
    for i in range(1, n):
        cur = int(bits[i])
        x = cur ^ prev
        prev = cur
        if x == 0:
            out.append(0x00)
            continue
        raw = x.to_bytes(8, "big")
        lead = 0
        while raw[lead] == 0:
            lead += 1
        sig = raw[lead:]
        # header byte: high nibble = leading zero bytes, low = sig length
        out.append((lead << 4) | len(sig))
        out += sig
    return bytes(out)


def decompress_chunk(blob: bytes) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`compress_chunk`."""
    (n,) = struct.unpack_from("<I", blob, 0)
    pos = 4
    if n == 0:
        return np.empty(0), np.empty(0)
    ts_ms = np.empty(n, dtype=np.int64)
    (ts_ms[0],) = struct.unpack_from("<q", blob, pos)
    pos += 8
    prev_delta = 0
    prev_ts = int(ts_ms[0])
    for i in range(1, n):
        dod, pos = _read_varint(blob, pos)
        prev_delta += dod
        prev_ts += prev_delta
        ts_ms[i] = prev_ts

    vals = np.empty(n, dtype=np.uint64)
    (first,) = struct.unpack_from("<Q", blob, pos)
    pos += 8
    vals[0] = first
    prev = int(first)
    for i in range(1, n):
        header = blob[pos]
        pos += 1
        if header == 0:
            vals[i] = prev
            continue
        lead = header >> 4
        sig_len = header & 0x0F
        sig = blob[pos : pos + sig_len]
        pos += sig_len
        x = int.from_bytes(
            b"\x00" * lead + sig + b"\x00" * (8 - lead - sig_len), "big"
        )
        prev ^= x
        vals[i] = prev
    return ts_ms.astype(np.float64) / 1000.0, vals.view(np.float64).copy()


# --------------------------------------------------------------------------
# the store
# --------------------------------------------------------------------------

_AGGS: dict[str, Callable[[np.ndarray], float]] = {
    "mean": lambda a: float(a.mean()),
    "sum": lambda a: float(a.sum()),
    "min": lambda a: float(a.min()),
    "max": lambda a: float(a.max()),
    "last": lambda a: float(a[-1]),
    "count": lambda a: float(len(a)),
}


@dataclass(frozen=True, slots=True)
class StoreStats:
    series: int
    samples: int
    sealed_chunks: int
    compressed_bytes: int
    raw_bytes: int

    @property
    def compression_ratio(self) -> float:
        if self.compressed_bytes == 0:
            return float("nan")
        return self.raw_bytes / self.compressed_bytes


class _Series:
    """One (metric, component) series: sealed chunks + open head."""

    __slots__ = ("chunks", "chunk_spans", "head_t", "head_v",
                 "n_sealed_samples", "sealed_bytes")

    def __init__(self) -> None:
        self.chunks: list[bytes] = []
        self.chunk_spans: list[tuple[float, float]] = []  # (t_min, t_max)
        self.head_t: list[float] = []
        self.head_v: list[float] = []
        self.n_sealed_samples = 0
        self.sealed_bytes = 0       # running sum(len(c) for c in chunks)

    def append(self, t: float, v: float, chunk_size: int) -> tuple[int, int] | None:
        """Append one sample; returns the seal delta when a chunk sealed."""
        self.head_t.append(t)
        self.head_v.append(v)
        if len(self.head_t) >= chunk_size:
            return self.seal()
        return None

    def seal(self) -> tuple[int, int] | None:
        """Seal the open head; returns (samples, bytes) sealed, or None.

        The return value lets the owning store maintain O(1) aggregate
        counters without re-walking every series.
        """
        if not self.head_t:
            return None
        t = np.asarray(self.head_t)
        v = np.asarray(self.head_v)
        order = np.argsort(t, kind="stable")
        t, v = t[order], v[order]
        blob = compress_chunk(t, v)
        self.chunks.append(blob)
        self.chunk_spans.append((float(t[0]), float(t[-1])))
        self.n_sealed_samples += len(t)
        self.sealed_bytes += len(blob)
        self.head_t = []
        self.head_v = []
        return len(t), len(blob)

    def read(self, t0: float, t1: float) -> tuple[np.ndarray, np.ndarray]:
        """All samples with ``t0 <= t < t1``, time-sorted."""
        ts: list[np.ndarray] = []
        vs: list[np.ndarray] = []
        for blob, (lo, hi) in zip(self.chunks, self.chunk_spans):
            if hi < t0 or lo >= t1:
                continue
            ct, cv = decompress_chunk(blob)
            mask = (ct >= t0) & (ct < t1)
            ts.append(ct[mask])
            vs.append(cv[mask])
        if self.head_t:
            ht = np.asarray(self.head_t)
            hv = np.asarray(self.head_v)
            mask = (ht >= t0) & (ht < t1)
            ts.append(ht[mask])
            vs.append(hv[mask])
        if not ts:
            return np.empty(0), np.empty(0)
        t = np.concatenate(ts)
        v = np.concatenate(vs)
        order = np.argsort(t, kind="stable")
        return t[order], v[order]

    @property
    def n_samples(self) -> int:
        return self.n_sealed_samples + len(self.head_t)

    def compressed_bytes(self) -> int:
        return self.sealed_bytes + 16 * len(self.head_t)


class SeriesQueryMixin:
    """Query-layer methods shared by every store with the series API.

    Anything exposing ``query(metric, component, t0, t1)`` and
    ``components(metric)`` gets multi-series queries, server-side
    downsampling, and cross-component aggregation for free — this is
    what lets :class:`~repro.storage.sharded.ShardedTimeSeriesStore`
    present the exact single-store query surface over K shards.
    """

    def query_components(
        self,
        metric: str,
        components: Sequence[str] | None = None,
        t0: float = -np.inf,
        t1: float = np.inf,
    ) -> dict[str, SeriesBatch]:
        """Range query many series at once (drill-down working set)."""
        comps = (
            list(components)
            if components is not None
            else self.components(metric)
        )
        return {c: self.query(metric, c, t0, t1) for c in comps}

    def downsample(
        self,
        metric: str,
        component: str,
        t0: float,
        t1: float,
        step: float,
        agg: str = "mean",
    ) -> SeriesBatch:
        """Server-side downsampling into fixed buckets of ``step`` seconds.

        Empty buckets are omitted (not NaN-filled); bucket timestamps are
        the bucket start.
        """
        if agg not in _AGGS:
            raise ValueError(f"unknown agg {agg!r}; choose from {sorted(_AGGS)}")
        if step <= 0:
            raise ValueError("step must be positive")
        raw = self.query(metric, component, t0, t1)
        if not len(raw):
            return SeriesBatch.empty(metric)
        fn = _AGGS[agg]
        buckets = np.floor((raw.times - t0) / step).astype(np.int64)
        out_t: list[float] = []
        out_v: list[float] = []
        # buckets are non-decreasing because raw is time-sorted
        start = 0
        for i in range(1, len(buckets) + 1):
            if i == len(buckets) or buckets[i] != buckets[start]:
                out_t.append(t0 + buckets[start] * step)
                out_v.append(fn(raw.values[start:i]))
                start = i
        return SeriesBatch.for_component(metric, component, out_t, out_v)

    def aggregate_across(
        self,
        metric: str,
        components: Sequence[str] | None = None,
        t0: float = -np.inf,
        t1: float = np.inf,
        step: float = 60.0,
        agg: str = "sum",
    ) -> SeriesBatch:
        """Aggregate a metric across components into one series.

        This is the Figure 4 "system aggregate" view: e.g. ``fs.read_bps``
        summed over all OSTs per time bucket.
        """
        if agg not in _AGGS:
            raise ValueError(f"unknown agg {agg!r}")
        per_comp = self.query_components(metric, components, t0, t1)
        ts: list[np.ndarray] = []
        vs: list[np.ndarray] = []
        for b in per_comp.values():
            if len(b):
                ts.append(b.times)
                vs.append(b.values)
        if not ts:
            return SeriesBatch.empty(metric)
        t = np.concatenate(ts)
        v = np.concatenate(vs)
        lo = float(t.min()) if t0 == -np.inf else t0
        buckets = np.floor((t - lo) / step).astype(np.int64)
        fn = _AGGS[agg]
        out_t: list[float] = []
        out_v: list[float] = []
        for b_id in np.unique(buckets):
            mask = buckets == b_id
            out_t.append(lo + b_id * step)
            out_v.append(fn(v[mask]))
        return SeriesBatch.for_component(metric, f"agg({agg})", out_t, out_v)


class TimeSeriesStore(SeriesQueryMixin):
    """In-memory TSDB over (metric, component)-keyed series."""

    def __init__(self, chunk_size: int = 512) -> None:
        if chunk_size < 2:
            raise ValueError("chunk_size must be >= 2")
        self.chunk_size = int(chunk_size)
        self._series: dict[MetricKey, _Series] = {}
        # aggregate counters so stats() is O(1), not a walk over every
        # series — the self-monitoring plane reads it on a cadence
        self._samples = 0
        self._sealed_samples = 0
        self._sealed_chunks = 0
        self._sealed_bytes = 0

    def _note_seal(self, sealed: tuple[int, int] | None) -> None:
        if sealed is not None:
            self._sealed_samples += sealed[0]
            self._sealed_chunks += 1
            self._sealed_bytes += sealed[1]

    # -- ingest ---------------------------------------------------------------

    def append(self, batch: SeriesBatch) -> int:
        """Ingest a batch; returns the number of samples stored."""
        n = 0
        cs = self.chunk_size
        for c, t, v in zip(batch.components, batch.times, batch.values):
            key = MetricKey(batch.metric, str(c))
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _Series()
            sealed = series.append(float(t), float(v), cs)
            if sealed is not None:
                self._note_seal(sealed)
            n += 1
        self._samples += n
        return n

    def append_many(self, batches: Iterable[SeriesBatch]) -> int:
        return sum(self.append(b) for b in batches)

    def flush(self) -> None:
        """Seal every open head chunk (checkpoint before archiving)."""
        for s in self._series.values():
            self._note_seal(s.seal())

    # -- query ---------------------------------------------------------------

    def keys(self, metric: str | None = None) -> list[MetricKey]:
        if metric is None:
            return sorted(self._series, key=str)
        return sorted(
            (k for k in self._series if k.metric == metric), key=str
        )

    def components(self, metric: str) -> list[str]:
        return [k.component for k in self.keys(metric)]

    def query(
        self,
        metric: str,
        component: str,
        t0: float = -np.inf,
        t1: float = np.inf,
    ) -> SeriesBatch:
        """Range query one series -> time-sorted batch."""
        series = self._series.get(MetricKey(metric, component))
        if series is None:
            return SeriesBatch.empty(metric)
        t, v = series.read(t0, t1)
        return SeriesBatch.for_component(metric, component, t, v)

    # -- maintenance / stats ---------------------------------------------------

    def drop_series(self, metric: str, component: str) -> bool:
        s = self._series.pop(MetricKey(metric, component), None)
        if s is None:
            return False
        self._samples -= s.n_samples
        self._sealed_samples -= s.n_sealed_samples
        self._sealed_chunks -= len(s.chunks)
        self._sealed_bytes -= s.sealed_bytes
        return True

    def stats(self) -> StoreStats:
        # O(1) from counters maintained at every mutation point: the
        # self-monitoring plane reads this on a cadence, against
        # thousands of series
        head = self._samples - self._sealed_samples
        return StoreStats(
            series=len(self._series),
            samples=self._samples,
            sealed_chunks=self._sealed_chunks,
            compressed_bytes=self._sealed_bytes + 16 * head,
            raw_bytes=self._samples * 16,  # float64 time + float64 value
        )

    # hooks used by the hierarchical tier manager -------------------------------

    def export_series(self, key: MetricKey) -> tuple[list[bytes], list[tuple[float, float]]]:
        """Sealed chunks + spans for archiving (head is sealed first)."""
        s = self._series[key]
        self._note_seal(s.seal())
        return list(s.chunks), list(s.chunk_spans)

    def evict_chunks_before(self, key: MetricKey, t_cut: float) -> int:
        """Drop sealed chunks wholly before ``t_cut``; returns count evicted."""
        s = self._series.get(key)
        if s is None:
            return 0
        keep_c, keep_s = [], []
        evicted = 0
        for blob, span in zip(s.chunks, s.chunk_spans):
            if span[1] < t_cut:
                evicted += 1
                n_in, = struct.unpack_from("<I", blob, 0)
                s.n_sealed_samples -= n_in
                s.sealed_bytes -= len(blob)
                self._samples -= n_in
                self._sealed_samples -= n_in
                self._sealed_chunks -= 1
                self._sealed_bytes -= len(blob)
            else:
                keep_c.append(blob)
                keep_s.append(span)
        s.chunks, s.chunk_spans = keep_c, keep_s
        return evicted

    def import_chunks(
        self,
        key: MetricKey,
        chunks: list[bytes],
        spans: list[tuple[float, float]],
    ) -> None:
        """Reload archived chunks (hierarchical storage reload path)."""
        s = self._series.get(key)
        if s is None:
            s = self._series[key] = _Series()
        merged = sorted(
            zip(chunks + s.chunks, spans + s.chunk_spans),
            key=lambda cs: cs[1][0],
        )
        s.chunks = [c for c, _ in merged]
        s.chunk_spans = [sp for _, sp in merged]
        n_in = sum(struct.unpack_from("<I", c, 0)[0] for c in chunks)
        b_in = sum(len(c) for c in chunks)
        s.n_sealed_samples += n_in
        s.sealed_bytes += b_in
        self._samples += n_in
        self._sealed_samples += n_in
        self._sealed_chunks += len(chunks)
        self._sealed_bytes += b_in
