"""Numpy-backed time-series store with Gorilla-style chunk compression.

The InfluxDB-class store of Section IV-C: ALCF "chose InfluxDB for its
superior data compression and query performance for high-volume time
series data compared to Cray's PMDB".  This store provides the behaviours
that comparison turns on:

* append-optimized ingest of :class:`~repro.core.metric.SeriesBatch`es,
  grouped by component and appended columnarly (no per-sample Python
  conversion on the hot path),
* per-series columnar chunks sealed at a fixed size and compressed with
  delta-of-delta timestamps + XOR float packing (the Facebook Gorilla
  scheme, the same family InfluxDB's TSM files use).  The codec is
  vectorized: the Python-level loops are over byte-length *classes*
  (a handful), not samples.  The original scalar implementation is kept
  as ``_compress_chunk_slow``/``_decompress_chunk_slow`` — a reference
  oracle the property tests hold the vectorized codec byte-identical to,
* range queries and server-side downsampling.  Sealing also records a
  :class:`ChunkSummary` (count/min/max/sum/first/last + span), so
  ``downsample`` answers from summaries for chunks wholly inside a
  bucket and decompresses only boundary chunks — the immutable-block
  summary trick InfluxDB TSM and Gorilla both lean on,
* a bounded LRU :class:`~repro.storage.chunkcache.ChunkCache` of
  decompressed sealed chunks (sealed chunks are immutable, so
  cacheability is exact) serving repeated drill-down reads,
* footprint/compression statistics for the storage-comparison bench.

Chunks are transparently decompressed on query; the open (mutable) head
chunk is queried in place.

With a :class:`~repro.storage.diskier.DiskTier` attached (``disk=``),
sealed blobs are additionally persisted to append-only segment files
and the resident set is bounded by the tier's ``hot_bytes`` budget:
cold blobs are spilled to ``(segment, offset, len)`` refs and read back
zero-copy through ``mmap`` (``_Series.chunk_blob`` is the one accessor
every read path goes through).  Appends are WAL-logged first, so heads
survive a crash; see ``storage/diskier.py`` for recovery.
"""

from __future__ import annotations

import itertools
import struct
from dataclasses import dataclass
from types import MappingProxyType
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from ..core.metric import MetricKey, SeriesBatch
from ..core.tracectx import HOP_INGEST, MAX_HOPS
from .chunkcache import ChunkCache, ChunkCacheStats
from .rollup import SeriesPyramid, bucket_anchor, fold_partials, reduce_partials

__all__ = [
    "compress_chunk",
    "decompress_chunk",
    "ChunkSummary",
    "SeriesQueryMixin",
    "TimeSeriesStore",
    "StoreStats",
]


# --------------------------------------------------------------------------
# chunk codec: delta-of-delta timestamps (varint) + XOR-packed float values
#
# Two implementations of the identical byte format: the vectorized one
# (the production path) and the original scalar one (the `_slow`
# reference oracle).  Property tests assert byte-for-byte equality.
# --------------------------------------------------------------------------

def _zigzag(n: int) -> int:
    return (n << 1) ^ (n >> 63)


def _unzigzag(z: int) -> int:
    return (z >> 1) ^ -(z & 1)


def _write_varint(out: bytearray, value: int) -> None:
    v = _zigzag(value)
    while True:
        b = v & 0x7F
        v >>= 7
        if v:
            out.append(b | 0x80)
        else:
            out.append(b)
            return


def _read_varint(buf: bytes, pos: int) -> tuple[int, int]:
    shift = 0
    result = 0
    while True:
        b = buf[pos]
        pos += 1
        result |= (b & 0x7F) << shift
        if not b & 0x80:
            return _unzigzag(result), pos
        shift += 7


def _compress_chunk_slow(times: np.ndarray, values: np.ndarray) -> bytes:
    """Scalar reference encoder (one Python iteration per sample)."""
    n = len(times)
    if n == 0:
        return struct.pack("<I", 0)
    ts_ms = np.round(np.asarray(times, dtype=np.float64) * 1000.0).astype(
        np.int64
    )
    out = bytearray(struct.pack("<I", n))
    # first timestamp raw, first delta, then delta-of-deltas
    out += struct.pack("<q", int(ts_ms[0]))
    prev_delta = 0
    prev_ts = int(ts_ms[0])
    for i in range(1, n):
        t = int(ts_ms[i])
        delta = t - prev_ts
        _write_varint(out, delta - prev_delta)
        prev_delta = delta
        prev_ts = t

    bits = np.asarray(values, dtype=np.float64).view(np.uint64)
    out += struct.pack("<Q", int(bits[0]))
    prev = int(bits[0])
    for i in range(1, n):
        cur = int(bits[i])
        x = cur ^ prev
        prev = cur
        if x == 0:
            out.append(0x00)
            continue
        raw = x.to_bytes(8, "big")
        lead = 0
        while raw[lead] == 0:
            lead += 1
        sig = raw[lead:]
        # header byte: high nibble = leading zero bytes, low = sig length
        out.append((lead << 4) | len(sig))
        out += sig
    return bytes(out)


def _decompress_chunk_slow(blob: bytes) -> tuple[np.ndarray, np.ndarray]:
    """Scalar reference decoder (inverse of :func:`_compress_chunk_slow`)."""
    (n,) = struct.unpack_from("<I", blob, 0)
    pos = 4
    if n == 0:
        return np.empty(0), np.empty(0)
    ts_ms = np.empty(n, dtype=np.int64)
    (ts_ms[0],) = struct.unpack_from("<q", blob, pos)
    pos += 8
    prev_delta = 0
    prev_ts = int(ts_ms[0])
    for i in range(1, n):
        dod, pos = _read_varint(blob, pos)
        prev_delta += dod
        prev_ts += prev_delta
        ts_ms[i] = prev_ts

    vals = np.empty(n, dtype=np.uint64)
    (first,) = struct.unpack_from("<Q", blob, pos)
    pos += 8
    vals[0] = first
    prev = int(first)
    for i in range(1, n):
        header = blob[pos]
        pos += 1
        if header == 0:
            vals[i] = prev
            continue
        lead = header >> 4
        sig_len = header & 0x0F
        sig = blob[pos : pos + sig_len]
        pos += sig_len
        x = int.from_bytes(
            b"\x00" * lead + sig + b"\x00" * (8 - lead - sig_len), "big"
        )
        prev ^= x
        vals[i] = prev
    return ts_ms.astype(np.float64) / 1000.0, vals.view(np.float64).copy()


# varint byte-length thresholds: z needs k+1 bytes when z >= 2**(7k)
_VARINT_THRESH = (np.uint64(1) << (np.uint64(7) * np.arange(1, 10,
                                                            dtype=np.uint64)))
# significant-byte-length thresholds: x needs k+1 bytes when x >= 2**(8k)
_BYTELEN_THRESH = (np.uint64(1) << (np.uint64(8) * np.arange(1, 8,
                                                             dtype=np.uint64)))


def _encode_varints(dod: np.ndarray) -> bytes:
    """Zig-zag varint encode an int64 array, stream-concatenated."""
    z = (dod.astype(np.uint64) << np.uint64(1)) ^ (
        dod >> np.int64(63)
    ).astype(np.uint64)
    nbytes = np.searchsorted(_VARINT_THRESH, z, side="right") + 1  # 1..10
    width = int(nbytes.max())
    if width == 1:             # every dod in [-64, 63] (regular cadence)
        return z.astype(np.uint8).tobytes()
    cols = np.arange(width)
    shifts = np.uint64(7) * cols.astype(np.uint64)
    groups = ((z[:, None] >> shifts[None, :]).astype(np.uint8)
              & np.uint8(0x7F))
    cont = cols[None, :] < (nbytes - 1)[:, None]
    groups = np.where(cont, groups | np.uint8(0x80), groups)
    sel = cols[None, :] < nbytes[:, None]
    return groups[sel].tobytes()


_COLS9 = np.arange(9, dtype=np.uint8)


def _encode_xor(bits: np.ndarray) -> bytes:
    """XOR-pack consecutive float bit patterns (all but the first).

    One byteswap yields the big-endian byte matrix of every XOR value;
    row i's significant bytes are its last ``blen[i]`` columns, already
    in stream order.  Scattering each header byte immediately *before*
    its significant bytes makes the whole token a row suffix, so a
    single broadcast compare + boolean take emits the packed stream.
    """
    x = bits[1:] ^ bits[:-1]
    n = len(x)
    blen = (x != np.uint64(0)).astype(np.uint8)
    for thresh in _BYTELEN_THRESH:          # compare-sum beats searchsorted
        blen += x >= thresh
    lead = np.uint8(8) - blen
    # (lead & 7) << 4 | blen is 0x00 exactly when x == 0 — no where()
    header = ((lead & np.uint8(7)) << np.uint8(4)) | blen
    tok = np.empty((n, 9), dtype=np.uint8)
    tok[:, 1:] = x.byteswap().view(np.uint8).reshape(n, 8)
    tok[np.arange(n), lead] = header
    sel = _COLS9[None, :] >= lead[:, None]
    return tok[sel].tobytes()


def compress_chunk(times: np.ndarray, values: np.ndarray) -> bytes:
    """Compress one sealed chunk (vectorized; byte-identical to
    :func:`_compress_chunk_slow`).

    Timestamps are stored at millisecond resolution as zig-zag varint
    delta-of-deltas — regular collection intervals (the common case:
    synchronized sweeps every 60 s) collapse to one byte per sample.
    Values are stored XOR-ed against the previous value with a
    byte-aligned (leading-zero-bytes, significant-bytes) header; runs of
    identical values (idle gauges) cost two bytes each.
    """
    n = len(times)
    if n == 0:
        return struct.pack("<I", 0)
    ts_ms = np.round(np.asarray(times, dtype=np.float64) * 1000.0).astype(
        np.int64
    )
    bits = np.ascontiguousarray(values, dtype=np.float64).view(np.uint64)
    parts = [struct.pack("<I", n), struct.pack("<q", int(ts_ms[0]))]
    if n > 1:
        deltas = np.diff(ts_ms)
        # the first delta-of-delta IS the first delta — typically one
        # whole collection interval, far larger than the rest — so emit
        # it scalarly to keep the vector path's byte-width uniform
        first = bytearray()
        _write_varint(first, int(deltas[0]))
        parts.append(bytes(first))
        if n > 2:
            parts.append(_encode_varints(np.diff(deltas)))
    parts.append(struct.pack("<Q", int(bits[0])))
    if n > 1:
        parts.append(_encode_xor(bits))
    return b"".join(parts)


def _token_starts(sec: np.ndarray, n_tok: int) -> np.ndarray:
    """Byte offsets of the ``n_tok`` XOR tokens in ``sec``.

    Token boundaries form a linked chain (each header byte encodes its
    token's length), which resists naive vectorization.  Two tiers:

    1. speculative uniform stride — if every token has the same length
       (constant gauges: all ``0x00``; fully noisy floats: all 9-byte)
       the starts are an arange, verified with one O(n) gather;
    2. otherwise pointer-doubled jump tables are squared only until
       anchors are cheap to walk scalarly (the anchor count balances
       ~1 ns/elem table squaring against ~100 ns/step Python walking),
       then the gaps fill by halving strides through the saved
       intermediate tables — O(m·log(n/anchors)) gather work instead of
       O(m·log n).
    """
    m = len(sec)
    nib = (sec & np.uint8(0x0F)).astype(np.int64)   # token len - 1
    stride = int(nib[0]) + 1
    if m == n_tok * stride:
        idx = np.arange(n_tok, dtype=np.int64) * stride
        if stride == 1 or bool((nib[idx] == stride - 1).all()):
            return idx
    jump = np.arange(1, m + 18, dtype=np.int64)
    jump[:m] += nib
    jump[m:] = m                          # sentinel zone: chains park here
    tables = [jump]
    step = 1
    anchors = max(512, m >> 5)
    while n_tok // step > anchors:
        jump = jump[jump]
        tables.append(jump)
        step *= 2
    top = tables[-1]
    tok = np.empty(n_tok, dtype=np.int64)
    item = top.item
    p = 0
    for i in range(0, n_tok, step):
        tok[i] = p
        p = item(p)
    for k in range(len(tables) - 2, -1, -1):
        s = 1 << k
        base = np.arange(0, n_tok - s, 2 * s, dtype=np.int64)
        tok[base + s] = tables[k][tok[base]]
    return tok


def _xor_token_lens(values: np.ndarray) -> np.ndarray | None:
    """Per-token byte lengths of a chunk's XOR section (the block index).

    The one irreducibly sequential part of decoding is walking the XOR
    token chain, so the store keeps this 1-byte-per-sample index for
    each sealed chunk — the same role as the block index in an InfluxDB
    TSM file.  Returns None when every token has the same length (the
    decoder's uniform-stride check recovers that case in O(n) anyway),
    which covers constant gauges for free.
    """
    bits = np.ascontiguousarray(values, dtype=np.float64).view(np.uint64)
    if len(bits) < 2:
        return None
    x = bits[1:] ^ bits[:-1]
    blen = (x != np.uint64(0)).astype(np.uint8)
    for thresh in _BYTELEN_THRESH:
        blen += x >= thresh
    lens = blen + np.uint8(1)
    if bool((lens == lens[0]).all()):
        return None
    return lens


def decompress_chunk(
    blob: bytes, lens_hint: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`compress_chunk` (vectorized).

    Variable-length token boundaries are recovered without a per-sample
    Python loop: varint ends are the bytes with a clear continuation
    bit, and XOR-token starts come from the chunk's
    :func:`_xor_token_lens` block index when the caller has one (one
    cumsum), else from a pointer-doubled chase over the per-byte skip
    table.
    """
    (n,) = struct.unpack_from("<I", blob, 0)
    if n == 0:
        return np.empty(0), np.empty(0)
    buf = np.frombuffer(blob, dtype=np.uint8)
    pos = 4
    (first_ts,) = struct.unpack_from("<q", blob, pos)
    pos += 8
    ts_ms = np.empty(n, dtype=np.int64)
    ts_ms[0] = first_ts
    if n > 1:
        dod = np.empty(n - 1, dtype=np.int64)
        # the first delta-of-delta IS the first delta — typically large
        # (one collection interval), so parse it scalarly and fast-path
        # the rest, which is all zeros on a regular cadence
        dod[0], off = _read_varint(blob, pos)
        rest = buf[off : off + n - 2]
        if len(rest) == n - 2 and bool((rest < 0x80).all()):
            z = rest.astype(np.uint64)        # every varint is one byte
            pos = off + n - 2
        else:
            sec = buf[off : off + 10 * (n - 2)]   # varints <= 10 bytes each
            ends = np.flatnonzero(sec < 0x80)[: n - 2]
            starts = np.empty(n - 2, dtype=np.int64)
            starts[0] = 0
            starts[1:] = ends[:-1] + 1
            lens = ends - starts + 1
            cols = np.arange(int(lens.max()))
            idx = np.minimum(starts[:, None] + cols[None, :], len(sec) - 1)
            mat = sec[idx].astype(np.uint64) & np.uint64(0x7F)
            valid = cols[None, :] < lens[:, None]
            shifts = np.uint64(7) * cols.astype(np.uint64)
            z = ((mat << shifts[None, :]) * valid).sum(axis=1,
                                                       dtype=np.uint64)
            pos = off + int(ends[-1]) + 1
        dod[1:] = ((z >> np.uint64(1))
                   ^ (np.uint64(0) - (z & np.uint64(1)))).view(np.int64)
        deltas = np.cumsum(dod)
        ts_ms[1:] = first_ts + np.cumsum(deltas)

    (first_val,) = struct.unpack_from("<Q", blob, pos)
    pos += 8
    bits = np.empty(n, dtype=np.uint64)
    bits[0] = first_val
    if n > 1:
        sec = buf[pos:]
        m = len(sec)
        if (
            lens_hint is not None
            and lens_hint.size == n - 1
            and int(lens_hint.sum(dtype=np.int64)) == m
        ):
            tok = np.empty(n - 1, dtype=np.int64)
            tok[0] = 0
            np.cumsum(lens_hint[:-1], dtype=np.int64, out=tok[1:])
        else:
            tok = _token_starts(sec, n - 1)
        hdr = sec[tok].astype(np.int64)
        slen = hdr & 0x0F                    # hdr == 0 -> slen = 0 (x == 0)
        lead = hdr >> 4
        # read 8 raw bytes after each header (zero-padded past the end)
        # as a big-endian word: its top slen bytes are the significant
        # bytes, repositioned with two shifts
        padded = np.concatenate([sec, np.zeros(8, dtype=np.uint8)])
        windows = np.lib.stride_tricks.sliding_window_view(padded, 8)
        raw = windows[tok + 1]               # (n-1, 8) row gather
        words = np.ascontiguousarray(raw).view(np.uint64).ravel().byteswap()
        drop = np.minimum(8 * (8 - slen), 63).astype(np.uint64)
        place = np.maximum(8 * (8 - lead - slen), 0).astype(np.uint64)
        x = (words >> drop) << place
        bits[1:] = np.where(slen == 0, np.uint64(0), x)
        np.bitwise_xor.accumulate(bits, out=bits)
    return ts_ms.astype(np.float64) / 1000.0, bits.view(np.float64)


# --------------------------------------------------------------------------
# the store
# --------------------------------------------------------------------------

# read-only on purpose: module state shared by every store/worker must
# not be mutable (the shared-state lint gate enforces this tree-wide)
_AGGS: Mapping[str, Callable[[np.ndarray], float]] = MappingProxyType({
    "mean": lambda a: float(a.mean()),
    "sum": lambda a: float(a.sum()),
    "min": lambda a: float(a.min()),
    "max": lambda a: float(a.max()),
    "last": lambda a: float(a[-1]),
    "count": lambda a: float(len(a)),
})

#: process-wide chunk ids: unique across every store, so one shared
#: cache can never alias chunks from different stores or shards
_chunk_ids = itertools.count(1)


@dataclass(frozen=True, slots=True)
class ChunkSummary:
    """Seal-time aggregates of one immutable chunk.

    Computed from the exact arrays the chunk decompresses back to
    (timestamps at millisecond resolution, values bit-exact), so a
    summary-served bucket is indistinguishable from a decompress-served
    one up to float summation order.
    """

    count: int
    t_min: float
    t_max: float
    v_min: float
    v_max: float
    v_sum: float
    v_first: float
    v_last: float


def _summarize(t: np.ndarray, v: np.ndarray) -> ChunkSummary:
    return ChunkSummary(
        count=len(t),
        t_min=float(t[0]),
        t_max=float(t[-1]),
        v_min=float(np.min(v)),
        v_max=float(np.max(v)),
        v_sum=float(np.sum(v)),
        v_first=float(v[0]),
        v_last=float(v[-1]),
    )


def _cached_decompress(
    cache: ChunkCache | None,
    chunk_id: int,
    blob: bytes,
    lens_hint: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    if cache is not None:
        hit = cache.get(chunk_id)
        if hit is not None:
            return hit
    t, v = decompress_chunk(blob, lens_hint)
    if cache is not None:
        cache.put(chunk_id, t, v)
    return t, v


@dataclass(frozen=True, slots=True)
class StoreStats:
    series: int
    samples: int
    sealed_chunks: int
    compressed_bytes: int
    raw_bytes: int

    @property
    def compression_ratio(self) -> float:
        if self.compressed_bytes == 0:
            return float("nan")
        return self.raw_bytes / self.compressed_bytes


class _Series:
    """One (metric, component) series: sealed chunks + open head.

    Parallel to ``chunks``: ``chunk_spans`` (rounded-ms time span),
    ``chunk_ids`` (cache keys), ``summaries`` (seal-time aggregates),
    ``chunk_hints`` (XOR block index for fast decode, or None) and
    ``chunk_refs`` (disk-tier location, or None without a tier).  A
    spilled chunk has ``chunks[i] is None`` and is read back through
    :meth:`chunk_blob` — the single accessor every query path uses.
    """

    __slots__ = ("chunks", "chunk_spans", "chunk_ids", "summaries",
                 "chunk_hints", "chunk_refs", "head_t", "head_v",
                 "n_sealed_samples", "sealed_bytes", "pyramid", "tier",
                 "key")

    def __init__(
        self, pyramid_levels: Sequence[float] | None = None,
        tier=None, key: MetricKey | None = None,
    ) -> None:
        self.tier = tier            # DiskTier (duck-typed) or None
        self.key = key              # needed for segment records
        self.chunk_refs: list = []
        self.chunks: list[bytes | None] = []
        self.chunk_spans: list[tuple[float, float]] = []  # (t_min, t_max)
        self.chunk_ids: list[int] = []
        self.summaries: list[ChunkSummary] = []
        self.chunk_hints: list[np.ndarray | None] = []
        self.head_t: list[float] = []
        self.head_v: list[float] = []
        self.n_sealed_samples = 0
        self.sealed_bytes = 0       # running sum(len(c) for c in chunks)
        # rollup pyramid maintained incrementally at seal time (serving
        # plane); None keeps seal() cost identical to the pre-serve store
        self.pyramid = (
            SeriesPyramid(pyramid_levels) if pyramid_levels else None
        )

    def append_array(
        self, t: np.ndarray, v: np.ndarray, chunk_size: int
    ) -> tuple[int, int, int]:
        """Columnar append; seals every time the head fills.

        Returns ``(chunks_sealed, samples_sealed, bytes_sealed)`` so the
        owning store maintains O(1) aggregate counters.
        """
        chunks = samples = nbytes = 0
        i, n = 0, len(t)
        while i < n:
            space = chunk_size - len(self.head_t)
            take = min(space, n - i)
            self.head_t.extend(t[i : i + take].tolist())
            self.head_v.extend(v[i : i + take].tolist())
            i += take
            if len(self.head_t) >= chunk_size:
                sealed = self.seal()
                if sealed is not None:
                    chunks += 1
                    samples += sealed[0]
                    nbytes += sealed[1]
        return chunks, samples, nbytes

    def seal(self) -> tuple[int, int] | None:
        """Seal the open head; returns (samples, bytes) sealed, or None.

        The return value lets the owning store maintain O(1) aggregate
        counters without re-walking every series.
        """
        if not self.head_t:
            return None
        t = np.asarray(self.head_t)
        v = np.asarray(self.head_v)
        order = np.argsort(t, kind="stable")
        t, v = t[order], v[order]
        blob = compress_chunk(t, v)
        # span + summary use the codec's ms rounding, so they describe
        # exactly what the chunk decompresses back to
        t_r = np.round(t * 1000.0).astype(np.int64).astype(np.float64) / 1000.0
        cid = next(_chunk_ids)
        self.chunks.append(blob)
        self.chunk_spans.append((float(t_r[0]), float(t_r[-1])))
        self.chunk_ids.append(cid)
        self.summaries.append(_summarize(t_r, v))
        self.chunk_hints.append(_xor_token_lens(v))
        if self.tier is not None:
            # persist the immutable blob now; spill to budget afterwards
            self.chunk_refs.append(self.tier.on_seal(self, blob, cid))
        else:
            self.chunk_refs.append(None)
        if self.pyramid is not None:
            # fold the exact arrays the chunk decompresses back to, with
            # seq numbers continuing the chunk-list stable sort order
            self.pyramid.add_sealed(t_r, v, self.n_sealed_samples)
        self.n_sealed_samples += len(t)
        self.sealed_bytes += len(blob)
        self.head_t = []
        self.head_v = []
        if self.tier is not None:
            self.tier.enforce_budget()
        return len(t), len(blob)

    def chunk_blob(self, i: int):
        """Sealed blob ``i``, resident or mapped from the disk tier.

        Returns ``bytes`` for hot chunks (touching the tier LRU) or a
        zero-copy ``memoryview`` over the segment mmap for spilled ones
        — :func:`decompress_chunk` accepts either.
        """
        blob = self.chunks[i]
        if blob is not None:
            if self.tier is not None:
                self.tier.touch(self.chunk_ids[i])
            return blob
        return self.tier.load(self.chunk_refs[i])

    def read(
        self, t0: float, t1: float, cache: ChunkCache | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """All samples with ``t0 <= t < t1``, time-sorted."""
        ts: list[np.ndarray] = []
        vs: list[np.ndarray] = []
        for i, (lo, hi) in enumerate(self.chunk_spans):
            if hi < t0 or lo >= t1:
                continue
            ct, cv = _cached_decompress(cache, self.chunk_ids[i],
                                        self.chunk_blob(i),
                                        self.chunk_hints[i])
            mask = (ct >= t0) & (ct < t1)
            ts.append(ct[mask])
            vs.append(cv[mask])
        if self.head_t:
            ht = np.asarray(self.head_t)
            hv = np.asarray(self.head_v)
            mask = (ht >= t0) & (ht < t1)
            ts.append(ht[mask])
            vs.append(hv[mask])
        if not ts:
            return np.empty(0), np.empty(0)
        t = np.concatenate(ts)
        v = np.concatenate(vs)
        order = np.argsort(t, kind="stable")
        return t[order], v[order]

    def rebuild_pyramid(self, cache: ChunkCache | None) -> None:
        """Re-fold every sealed chunk (eviction / archive-reload path)."""
        if self.pyramid is None:
            return
        self.pyramid = SeriesPyramid(self.pyramid.levels)
        seq_base = 0
        for i in range(len(self.chunks)):
            ct, cv = _cached_decompress(cache, self.chunk_ids[i],
                                        self.chunk_blob(i),
                                        self.chunk_hints[i])
            self.pyramid.add_sealed(ct, cv, seq_base)
            seq_base += len(ct)

    @property
    def n_samples(self) -> int:
        return self.n_sealed_samples + len(self.head_t)

    def compressed_bytes(self) -> int:
        return self.sealed_bytes + 16 * len(self.head_t)


# --------------------------------------------------------------------------
# vectorized bucketing helpers (shared by downsample / aggregate_across)
# --------------------------------------------------------------------------

def _bucket_starts(t: np.ndarray, anchor: float,
                   step: float) -> tuple[np.ndarray, np.ndarray]:
    """Bucket ids and segment starts of a time-sorted array.

    ``anchor`` is the grid origin from
    :func:`~repro.storage.rollup.bucket_anchor` — always a step-grid
    point, so raw bucketing, summary pruning, and the rollup pyramids
    all agree on bucket boundaries.
    """
    buckets = np.floor((t - anchor) / step).astype(np.int64)
    cuts = np.flatnonzero(buckets[1:] != buckets[:-1]) + 1
    starts = np.concatenate(([0], cuts))
    return buckets, starts


def _bucket_agg(
    t: np.ndarray, v: np.ndarray, anchor: float, step: float, agg: str
) -> tuple[np.ndarray, np.ndarray]:
    """One reduceat pass over a time-sorted series -> (bucket_t, agg_v)."""
    buckets, starts = _bucket_starts(t, anchor, step)
    out_t = anchor + buckets[starts] * step
    if agg == "sum":
        out_v = np.add.reduceat(v, starts)
    elif agg == "mean":
        counts = np.diff(np.append(starts, len(v)))
        out_v = np.add.reduceat(v, starts) / counts
    elif agg == "min":
        out_v = np.minimum.reduceat(v, starts)
    elif agg == "max":
        out_v = np.maximum.reduceat(v, starts)
    elif agg == "last":
        ends = np.append(starts[1:], len(v))
        out_v = v[ends - 1]
    else:                              # count
        out_v = np.diff(np.append(starts, len(v))).astype(np.float64)
    return out_t, out_v


class SeriesQueryMixin:
    """Query-layer methods shared by every store with the series API.

    Anything exposing ``query(metric, component, t0, t1)`` and
    ``components(metric)`` gets multi-series queries, server-side
    downsampling, and cross-component aggregation for free — this is
    what lets :class:`~repro.storage.sharded.ShardedTimeSeriesStore`
    present the exact single-store query surface over K shards.

    Stores that additionally expose ``_series_view(metric, component)``
    (the chunk-level surface: a :class:`_Series` plus its cache) get the
    summary-pruned ``downsample`` fast path: chunks wholly inside one
    bucket are answered from their seal-time :class:`ChunkSummary` and
    never decompressed.
    """

    def query_components(
        self,
        metric: str,
        components: Sequence[str] | None = None,
        t0: float = -np.inf,
        t1: float = np.inf,
    ) -> dict[str, SeriesBatch]:
        """Range query many series at once (drill-down working set)."""
        comps = (
            list(components)
            if components is not None
            else self.components(metric)
        )
        return {c: self.query(metric, c, t0, t1) for c in comps}

    def downsample(
        self,
        metric: str,
        component: str,
        t0: float,
        t1: float,
        step: float,
        agg: str = "mean",
        prune: bool = True,
    ) -> SeriesBatch:
        """Server-side downsampling into fixed buckets of ``step`` seconds.

        Empty buckets are omitted (not NaN-filled); bucket timestamps are
        the bucket start on the *step-aligned grid*
        (:func:`~repro.storage.rollup.bucket_anchor`), so a window whose
        ``t0`` is not step-aligned still lands on the same boundaries as
        every other query path — the first bucket may start before
        ``t0``, while the sample filter itself stays ``[t0, t1)``.  With
        ``prune=True`` (default) sealed chunks wholly inside one bucket
        are answered from chunk summaries without decompression;
        ``prune=False`` forces the decompress path (the equivalence
        oracle and the cold-vs-warm benchmark).
        """
        if agg not in _AGGS:
            raise ValueError(f"unknown agg {agg!r}; choose from {sorted(_AGGS)}")
        if step <= 0:
            raise ValueError("step must be positive")
        view = getattr(self, "_series_view", None)
        if prune and view is not None and np.isfinite(t0):
            sv = view(metric, component)
            if sv is None:
                return SeriesBatch.empty(metric)
            return self._downsample_pruned(metric, component, sv[0], sv[1],
                                           t0, t1, step, agg,
                                           bucket_anchor(t0, step))
        raw = self.query(metric, component, t0, t1)
        if not len(raw):
            return SeriesBatch.empty(metric)
        anchor = bucket_anchor(t0 if np.isfinite(t0) else float(raw.times[0]),
                               step)
        out_t, out_v = _bucket_agg(raw.times, raw.values, anchor, step, agg)
        return SeriesBatch.for_component(metric, component, out_t, out_v)

    def _downsample_pruned(
        self,
        metric: str,
        component: str,
        series: "_Series",
        cache: ChunkCache | None,
        t0: float,
        t1: float,
        step: float,
        agg: str,
        anchor: float,
    ) -> SeriesBatch:
        """Chunk-summary-pruned downsample.

        Per overlapping chunk: if it sits wholly inside the window *and*
        inside one bucket of the ``(anchor, step)`` grid, contribute its
        summary; otherwise decompress (through the cache) and bucket its
        windowed samples.  ``seq`` numbers reproduce the stable
        time-sort of the decompress path, so order-sensitive aggs
        (``last``) agree exactly.  Folding and the final merge are the
        shared partial-column helpers in :mod:`repro.storage.rollup` —
        the same code the pyramid planner reduces with.
        """
        pieces: list[tuple[np.ndarray, ...]] = []
        seq_base = 0
        for i, (lo, hi) in enumerate(series.chunk_spans):
            summ = series.summaries[i]
            if hi < t0 or lo >= t1:
                seq_base += summ.count
                continue
            whole = lo >= t0 and hi < t1
            if whole and (np.floor((lo - anchor) / step)
                          == np.floor((hi - anchor) / step)):
                pieces.append((
                    np.asarray([np.int64(np.floor((lo - anchor) / step))]),
                    np.asarray([summ.count]),
                    np.asarray([summ.v_sum]),
                    np.asarray([summ.v_min]),
                    np.asarray([summ.v_max]),
                    np.asarray([summ.t_max]),
                    np.asarray([summ.v_last]),
                    np.asarray([seq_base + summ.count - 1]),
                ))
            else:
                ct, cv = _cached_decompress(cache, series.chunk_ids[i],
                                            series.chunk_blob(i),
                                            series.chunk_hints[i])
                mask = (ct >= t0) & (ct < t1)
                if mask.any():
                    pieces.append(fold_partials(
                        ct[mask], cv[mask], anchor, step,
                        seq=seq_base + np.flatnonzero(mask),
                    ))
            seq_base += summ.count
        if series.head_t:
            ht = np.asarray(series.head_t)
            hv = np.asarray(series.head_v)
            mask = (ht >= t0) & (ht < t1)
            if mask.any():
                seq = seq_base + np.flatnonzero(mask)
                ht, hv = ht[mask], hv[mask]
                order = np.argsort(ht, kind="stable")
                pieces.append(fold_partials(ht[order], hv[order],
                                            anchor, step, seq=seq[order]))

        if not pieces:
            return SeriesBatch.empty(metric)
        out_t, out_v = reduce_partials(pieces, anchor, step, agg)
        return SeriesBatch.for_component(metric, component, out_t, out_v)

    def aggregate_across(
        self,
        metric: str,
        components: Sequence[str] | None = None,
        t0: float = -np.inf,
        t1: float = np.inf,
        step: float = 60.0,
        agg: str = "sum",
    ) -> SeriesBatch:
        """Aggregate a metric across components into one series.

        This is the Figure 4 "system aggregate" view: e.g. ``fs.read_bps``
        summed over all OSTs per time bucket.  Samples are time-sorted
        across components before bucketing, so order-sensitive aggs
        (``last``) see the true latest sample, not whichever component
        iterated last.  Buckets sit on the step-aligned grid anchored at
        ``bucket_anchor(t0, step)`` (or at the first sample when ``t0``
        is unbounded), matching every other bucketing path.
        """
        if agg not in _AGGS:
            raise ValueError(f"unknown agg {agg!r}")
        per_comp = self.query_components(metric, components, t0, t1)
        ts: list[np.ndarray] = []
        vs: list[np.ndarray] = []
        for batch in per_comp.values():
            if len(batch):
                ts.append(batch.times)
                vs.append(batch.values)
        if not ts:
            return SeriesBatch.empty(metric)
        t = np.concatenate(ts)
        v = np.concatenate(vs)
        order = np.argsort(t, kind="stable")
        t, v = t[order], v[order]
        lo = float(t[0]) if not np.isfinite(t0) else t0
        out_t, out_v = _bucket_agg(t, v, bucket_anchor(lo, step), step, agg)
        return SeriesBatch.for_component(metric, f"agg({agg})", out_t, out_v)


class TimeSeriesStore(SeriesQueryMixin):
    """In-memory TSDB over (metric, component)-keyed series."""

    #: optional zero-arg simulated-clock callable; when attached (by the
    #: pipeline, when freshness tracing is on), ingest stamps a traced
    #: batch's context with its queryable-at time
    clock = None

    def __init__(self, chunk_size: int = 512,
                 cache: ChunkCache | None = None,
                 pyramid_levels: Sequence[float] | None = None,
                 disk=None) -> None:
        if chunk_size < 2:
            raise ValueError("chunk_size must be >= 2")
        self.chunk_size = int(chunk_size)
        # optional out-of-core tier (repro.storage.diskier.DiskTier,
        # duck-typed): sealed blobs persist to segments, appends are
        # WAL-logged, and the resident set is budget-bounded
        self.disk = disk
        # the decompressed-chunk cache may be shared (the sharded store
        # passes one instance to every shard for a global memory bound)
        self.cache = cache if cache is not None else ChunkCache()
        # rollup-pyramid levels maintained at seal time for the serving
        # plane (None = no pyramids, the pre-serve ingest cost)
        self.pyramid_levels = (
            tuple(float(x) for x in pyramid_levels)
            if pyramid_levels else None
        )
        self._series: dict[MetricKey, _Series] = {}
        # per-metric mutation epochs: bumped on any change that can alter
        # query results, so the serving plane's result cache invalidates
        # precisely (stale entries die, untouched metrics keep serving)
        self._epochs: dict[str, int] = {}
        # aggregate counters so stats() is O(1), not a walk over every
        # series — the self-monitoring plane reads it on a cadence
        self._samples = 0
        self._sealed_samples = 0
        self._sealed_chunks = 0
        self._sealed_bytes = 0

    def _note_seal(self, sealed: tuple[int, int] | None) -> None:
        if sealed is not None:
            self._sealed_samples += sealed[0]
            self._sealed_chunks += 1
            self._sealed_bytes += sealed[1]

    def _new_series(self, key: MetricKey) -> _Series:
        s = self._series[key] = _Series(self.pyramid_levels,
                                        tier=self.disk, key=key)
        return s

    def _head_is_empty(self, metric: str, comp) -> bool:
        """True when the series has no open head — a chunk-aligned
        single-series batch then seals whole and needs no WAL record."""
        s = self._series.get(MetricKey(metric, str(comp)))
        return s is None or not s.head_t

    # -- ingest ---------------------------------------------------------------

    def append(self, batch: SeriesBatch) -> int:
        """Ingest a batch; returns the number of samples stored.

        Rows are grouped by component and appended columnarly — one
        ``append_array`` per series per batch, not one Python-level
        ``float()`` conversion per sample.
        """
        n = len(batch)
        if n == 0:
            return 0
        self._epochs[batch.metric] = self._epochs.get(batch.metric, 0) + 1
        comps = batch.components.tolist()
        n_uniq = len(set(comps))
        if self.disk is not None and not (
            n_uniq == 1 and n % self.chunk_size == 0
            and self._head_is_empty(batch.metric, comps[0])
        ):
            # WAL before any head mutation: unsealed points survive a
            # crash up to the last fsync batch.  Chunk-aligned
            # single-series batches skip the WAL: every point seals into
            # a segment record in this same call, and segments ride the
            # same fsync batch, so logging them first would just double
            # the write volume (the bulk-load shape).
            self.disk.wal_append(batch)
        tr = batch.trace
        if self.clock is not None and tr is not None:
            # inlined TraceContext.stamp(HOP_INGEST, ...) — per-batch
            # hot path; see stamp() for the semantics
            hops = tr.hops
            t = self.clock()
            if hops and hops[-1][0] == HOP_INGEST:
                last = hops[-1]
                if t < last[1]:
                    last[1] = t
                if t > last[2]:
                    last[2] = t
            elif len(hops) < MAX_HOPS:
                hops.append([HOP_INGEST, t, t, 1])
            else:
                tr.truncated += 1
        cs = self.chunk_size
        if n_uniq == n:
            # sweep shape (every row its own series): grouping would
            # produce n single-sample slices, so append scalars instead
            get = self._series.get
            t_list = np.asarray(batch.times, dtype=np.float64).tolist()
            v_list = np.asarray(batch.values, dtype=np.float64).tolist()
            for c, t, v in zip(comps, t_list, v_list):
                key = MetricKey(batch.metric, str(c))
                series = get(key)
                if series is None:
                    series = self._new_series(key)
                series.head_t.append(t)
                series.head_v.append(v)
                if len(series.head_t) >= cs:
                    self._note_seal(series.seal())
            self._samples += n
            return n
        times = np.asarray(batch.times, dtype=np.float64)
        values = np.asarray(batch.values, dtype=np.float64)
        uniq, inv = np.unique(batch.components.astype(str),
                              return_inverse=True)
        order = np.argsort(inv, kind="stable")
        bounds = np.concatenate(
            ([0], np.cumsum(np.bincount(inv, minlength=len(uniq))))
        )
        st, sv = times[order], values[order]
        chunks = samples = nbytes = 0
        for g in range(len(uniq)):
            key = MetricKey(batch.metric, str(uniq[g]))
            series = self._series.get(key)
            if series is None:
                series = self._new_series(key)
            c, smp, byt = series.append_array(
                st[bounds[g] : bounds[g + 1]],
                sv[bounds[g] : bounds[g + 1]], cs,
            )
            chunks += c
            samples += smp
            nbytes += byt
        self._sealed_chunks += chunks
        self._sealed_samples += samples
        self._sealed_bytes += nbytes
        self._samples += n
        return n

    def append_many(self, batches: Iterable[SeriesBatch]) -> int:
        return sum(self.append(b) for b in batches)

    def flush(self) -> None:
        """Seal every open head chunk (checkpoint before archiving)."""
        for s in self._series.values():
            self._note_seal(s.seal())
        if self.disk is not None:
            self.disk.sync()

    # -- query ---------------------------------------------------------------

    def keys(self, metric: str | None = None) -> list[MetricKey]:
        if metric is None:
            return sorted(self._series, key=str)
        return sorted(
            (k for k in self._series if k.metric == metric), key=str
        )

    def components(self, metric: str) -> list[str]:
        return [k.component for k in self.keys(metric)]

    def query(
        self,
        metric: str,
        component: str,
        t0: float = -np.inf,
        t1: float = np.inf,
    ) -> SeriesBatch:
        """Range query one series -> time-sorted batch."""
        series = self._series.get(MetricKey(metric, component))
        if series is None:
            return SeriesBatch.empty(metric)
        t, v = series.read(t0, t1, self.cache)
        return SeriesBatch.for_component(metric, component, t, v)

    def _series_view(
        self, metric: str, component: str
    ) -> tuple[_Series, ChunkCache] | None:
        """Chunk-level surface for the summary-pruned query path."""
        series = self._series.get(MetricKey(metric, component))
        if series is None:
            return None
        return series, self.cache

    def query_epoch(self, metric: str) -> int:
        """Mutation epoch of a metric — the serving plane's result-cache
        validity token.  Any append/drop/evict/import touching the
        metric bumps it; an unchanged epoch guarantees every query
        answer for the metric is still exact."""
        return self._epochs.get(metric, 0)

    # -- maintenance / stats ---------------------------------------------------

    def drop_series(self, metric: str, component: str) -> bool:
        s = self._series.pop(MetricKey(metric, component), None)
        if s is None:
            return False
        self._epochs[metric] = self._epochs.get(metric, 0) + 1
        if self.disk is not None:
            self.disk.forget(s)
        self.cache.invalidate(s.chunk_ids)
        self._samples -= s.n_samples
        self._sealed_samples -= s.n_sealed_samples
        self._sealed_chunks -= len(s.chunks)
        self._sealed_bytes -= s.sealed_bytes
        return True

    def stats(self) -> StoreStats:
        # O(1) from counters maintained at every mutation point: the
        # self-monitoring plane reads this on a cadence, against
        # thousands of series
        head = self._samples - self._sealed_samples
        return StoreStats(
            series=len(self._series),
            samples=self._samples,
            sealed_chunks=self._sealed_chunks,
            compressed_bytes=self._sealed_bytes + 16 * head,
            raw_bytes=self._samples * 16,  # float64 time + float64 value
        )

    def cache_stats(self) -> ChunkCacheStats:
        """Counters of the decompressed-chunk cache (selfmon surface)."""
        return self.cache.stats()

    # hooks used by the hierarchical tier manager -------------------------------

    def export_series(self, key: MetricKey) -> tuple[list[bytes], list[tuple[float, float]]]:
        """Sealed chunks + spans for archiving (head is sealed first).

        Blobs are materialized as ``bytes`` (spilled chunks are copied
        out of the mmap) so the archive owns its data outright.
        """
        s = self._series[key]
        self._note_seal(s.seal())
        return ([bytes(s.chunk_blob(i)) for i in range(len(s.chunks))],
                list(s.chunk_spans))

    def evict_chunks_before(self, key: MetricKey, t_cut: float) -> int:
        """Evict sealed chunks wholly before ``t_cut``.

        Without a disk tier this *discards* them (the original
        behaviour: parallel lists pruned together, cache entries
        invalidated, counters and pyramid rebuilt, epoch bumped) and
        returns the count dropped.  With a disk tier attached eviction
        becomes a *demotion*: qualifying chunks spill to their on-disk
        refs instead of being lost, queries still answer exactly, no
        counter or epoch changes, and the return value is the number of
        chunks newly demoted by this call.
        """
        s = self._series.get(key)
        if s is None:
            return 0
        if self.disk is not None:
            demoted_ids = []
            for i, span in enumerate(s.chunk_spans):
                if span[1] < t_cut and self.disk.demote(s, i):
                    demoted_ids.append(s.chunk_ids[i])
            if demoted_ids:
                # release the decompressed copies too — demotion exists
                # to shrink the resident set
                self.cache.invalidate(demoted_ids)
            return len(demoted_ids)
        keep: list[tuple] = []
        gone_ids = []
        for row in zip(s.chunks, s.chunk_spans, s.chunk_ids,
                       s.summaries, s.chunk_hints, s.chunk_refs):
            blob, span, cid, summ, _, _ = row
            if span[1] < t_cut:
                gone_ids.append(cid)
                s.n_sealed_samples -= summ.count
                s.sealed_bytes -= len(blob)
                self._samples -= summ.count
                self._sealed_samples -= summ.count
                self._sealed_chunks -= 1
                self._sealed_bytes -= len(blob)
            else:
                keep.append(row)
        s.chunks = [r[0] for r in keep]
        s.chunk_spans = [r[1] for r in keep]
        s.chunk_ids = [r[2] for r in keep]
        s.summaries = [r[3] for r in keep]
        s.chunk_hints = [r[4] for r in keep]
        s.chunk_refs = [r[5] for r in keep]
        if gone_ids:
            self.cache.invalidate(gone_ids)
            self._epochs[key.metric] = self._epochs.get(key.metric, 0) + 1
            s.rebuild_pyramid(self.cache)
        return len(gone_ids)

    def import_chunks(
        self,
        key: MetricKey,
        chunks: list[bytes],
        spans: list[tuple[float, float]],
    ) -> None:
        """Reload archived chunks (hierarchical storage reload path).

        Summaries and block-index hints are rebuilt from one decompress
        pass per incoming chunk, so the summary-pruned query path covers
        reloaded history exactly like natively sealed data.
        """
        s = self._series.get(key)
        if s is None:
            s = self._new_series(key)
        incoming = []
        n_in = b_in = 0
        for blob, span in zip(chunks, spans):
            ct, cv = decompress_chunk(blob)
            summ = _summarize(ct, cv) if len(ct) else ChunkSummary(
                0, span[0], span[1], np.nan, np.nan, 0.0, np.nan, np.nan
            )
            hint = _xor_token_lens(cv) if len(cv) else None
            cid = next(_chunk_ids)
            ref = (self.disk.on_seal(s, blob, cid)
                   if self.disk is not None else None)
            incoming.append((blob, span, cid, summ, hint, ref))
            n_in += summ.count
            b_in += len(blob)
        merged = sorted(
            incoming + list(zip(s.chunks, s.chunk_spans, s.chunk_ids,
                                s.summaries, s.chunk_hints, s.chunk_refs)),
            key=lambda row: row[1][0],
        )
        s.chunks = [r[0] for r in merged]
        s.chunk_spans = [r[1] for r in merged]
        s.chunk_ids = [r[2] for r in merged]
        s.summaries = [r[3] for r in merged]
        s.chunk_hints = [r[4] for r in merged]
        s.chunk_refs = [r[5] for r in merged]
        s.n_sealed_samples += n_in
        s.sealed_bytes += b_in
        self._epochs[key.metric] = self._epochs.get(key.metric, 0) + 1
        # the merge reordered the chunk list, so seq numbering (and with
        # it every rollup row) is re-derived in the new list order
        s.rebuild_pyramid(self.cache)
        self._samples += n_in
        self._sealed_samples += n_in
        self._sealed_chunks += len(chunks)
        self._sealed_bytes += b_in
        if self.disk is not None:
            self.disk.enforce_budget()

    # hooks used by the out-of-core disk tier -----------------------------------

    def disk_stats(self):
        """Disk-tier counters, or None when running in-memory only."""
        return self.disk.stats() if self.disk is not None else None

    def snapshot(self):
        """Write a disk-tier manifest (series index + pyramid partials
        + heads) and rotate the WAL; returns the manifest path."""
        if self.disk is None:
            raise RuntimeError("snapshot() requires a disk tier")
        return self.disk.snapshot(self)

    def points_by_metric(self) -> dict[str, int]:
        """Per-metric stored point counts — the durable truth the
        ledger reconciles against after a crash recovery."""
        out: dict[str, int] = {}
        for key, s in self._series.items():
            out[key.metric] = out.get(key.metric, 0) + s.n_samples
        return out
