"""Bounded LRU cache of decompressed sealed chunks.

Sealed chunks are immutable — once :meth:`_Series.seal` has produced a
blob it is never rewritten, only dropped wholesale by eviction or
archiving — so caching their decompressed arrays is *exact*: there is
no coherence problem, only a capacity bound.  This is the same design
point as InfluxDB's TSM block cache and the Gorilla paper's in-memory
block tier: compression pays for itself at rest, the cache pays for
itself on the drill-down read path where the same recent chunks are
decoded over and over by dashboards and analyses.

One cache instance can be shared by many stores (the sharded store
routes every shard through a single cache so the memory bound is
global, not per-shard).  Hit/miss/eviction counters feed the
``selfmon.store.cache_*`` gauges.

With the out-of-core tier (:mod:`repro.storage.diskier`) this cache is
also the *warm* tier over spilled chunks: a read of a chunk whose bytes
live only in a segment file decodes straight from the mmap-backed
buffer (zero staging copy) and the decoded arrays land here, so repeat
reads of cold data cost a cache hit, not a disk decode.  Chunk ids are
process-unique and restored chunks get fresh ids, so a crash-recovered
store can share a warm cache without aliasing stale entries.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable

import numpy as np

__all__ = ["ChunkCache", "ChunkCacheStats"]


@dataclass(frozen=True, slots=True)
class ChunkCacheStats:
    """Point-in-time counters of one chunk cache."""

    hits: int
    misses: int
    evictions: int
    invalidations: int
    entries: int
    bytes: int

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ChunkCache:
    """LRU over chunk-id -> (times, values), bounded by resident bytes.

    Chunk ids are globally unique (issued by a process-wide counter at
    seal time), so a shared cache never aliases chunks from different
    stores.  ``max_bytes=0`` disables caching entirely — every ``get``
    misses and ``put`` is a no-op — which keeps the disabled path
    branch-free for callers.
    """

    def __init__(self, max_bytes: int = 32 << 20) -> None:
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        self.max_bytes = int(max_bytes)
        self._entries: OrderedDict[int, tuple[np.ndarray, np.ndarray]] = (
            OrderedDict()
        )
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def resident_bytes(self) -> int:
        return self._bytes

    def get(self, chunk_id: int) -> tuple[np.ndarray, np.ndarray] | None:
        """Arrays for a cached chunk, or None.  Callers must treat the
        returned arrays as immutable (masking/fancy-indexing copies)."""
        with self._lock:
            entry = self._entries.get(chunk_id)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(chunk_id)
            self.hits += 1
            return entry

    def put(self, chunk_id: int, times: np.ndarray,
            values: np.ndarray) -> None:
        """Insert a decompressed chunk, evicting LRU entries to fit."""
        nbytes = times.nbytes + values.nbytes
        if nbytes > self.max_bytes:
            return                   # oversized (or cache disabled)
        with self._lock:
            old = self._entries.pop(chunk_id, None)
            if old is not None:
                self._bytes -= old[0].nbytes + old[1].nbytes
            self._entries[chunk_id] = (times, values)
            self._bytes += nbytes
            while self._bytes > self.max_bytes:
                _, (t, v) = self._entries.popitem(last=False)
                self._bytes -= t.nbytes + v.nbytes
                self.evictions += 1

    def invalidate(self, chunk_ids: Iterable[int]) -> int:
        """Drop entries for chunks that no longer exist (store eviction,
        series drop, archiving); returns how many were resident."""
        dropped = 0
        with self._lock:
            for cid in chunk_ids:
                entry = self._entries.pop(cid, None)
                if entry is not None:
                    self._bytes -= entry[0].nbytes + entry[1].nbytes
                    dropped += 1
            self.invalidations += dropped
        return dropped

    def clear(self) -> None:
        """Empty the cache (counters are preserved — they are lifetime
        telemetry, not contents)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def stats(self) -> ChunkCacheStats:
        with self._lock:
            return ChunkCacheStats(
                hits=self.hits,
                misses=self.misses,
                evictions=self.evictions,
                invalidations=self.invalidations,
                entries=len(self._entries),
                bytes=self._bytes,
            )
