"""Storage backends: TSDB (plain or sharded), relational, log index,
tiering, job index."""

from .chunkcache import ChunkCache, ChunkCacheStats
from .diskier import (
    ChunkRef,
    DiskTier,
    DiskTierStats,
    RecoveryReport,
    recover_sharded,
    recover_store,
)
from .hierarchy import ArchiveEntry, TieredStore
from .jobstore import Allocation, JobIndex
from .logstore import LogStore, tokenize
from .sharded import ShardedTimeSeriesStore
from .sqlstore import JobRow, SqlStore, TestResultRow
from .tsdb import (
    ChunkSummary,
    SeriesQueryMixin,
    StoreStats,
    TimeSeriesStore,
    compress_chunk,
    decompress_chunk,
)

__all__ = [
    "ArchiveEntry",
    "TieredStore",
    "Allocation",
    "JobIndex",
    "LogStore",
    "tokenize",
    "ChunkCache",
    "ChunkCacheStats",
    "ChunkRef",
    "ChunkSummary",
    "DiskTier",
    "DiskTierStats",
    "RecoveryReport",
    "recover_sharded",
    "recover_store",
    "ShardedTimeSeriesStore",
    "JobRow",
    "SqlStore",
    "TestResultRow",
    "SeriesQueryMixin",
    "StoreStats",
    "TimeSeriesStore",
    "compress_chunk",
    "decompress_chunk",
]
