"""Storage backends: TSDB, relational, log index, tiering, job index."""

from .hierarchy import ArchiveEntry, TieredStore
from .jobstore import Allocation, JobIndex
from .logstore import LogStore, tokenize
from .sqlstore import JobRow, SqlStore, TestResultRow
from .tsdb import StoreStats, TimeSeriesStore, compress_chunk, decompress_chunk

__all__ = [
    "ArchiveEntry",
    "TieredStore",
    "Allocation",
    "JobIndex",
    "LogStore",
    "tokenize",
    "JobRow",
    "SqlStore",
    "TestResultRow",
    "StoreStats",
    "TimeSeriesStore",
    "compress_chunk",
    "decompress_chunk",
]
