"""Hierarchical (hot/cold) storage tiering with archive and reload.

Table I (*Data Storage and Formats*): "hierarchical storage models with
the ability to locate and reload data as needed are desirable" and
"Solutions must address both the mechanics of the archiving and
reloading and tracking the locations and contents of archived data."

:class:`TieredStore` wraps a hot :class:`TimeSeriesStore`; ``archive()``
moves sealed chunks older than a cutoff into a cold tier (zlib-packed
blobs, optionally persisted to a directory) while a catalog records
exactly which series/time-spans live cold.  Queries that touch archived
spans transparently reload the needed chunks first — long-term analyses
("revisiting historical data in conjunction with current data") just
work, at reload cost the stats expose.
"""

from __future__ import annotations

import pickle
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..core.metric import MetricKey, SeriesBatch
from .tsdb import TimeSeriesStore

__all__ = ["ArchiveEntry", "TieredStore"]


@dataclass
class ArchiveEntry:
    """Catalog record: where one series' cold chunks are and what they span."""

    key: MetricKey
    t_min: float
    t_max: float
    n_chunks: int
    location: str               # "memory" or a file path
    blob: bytes | None = None   # present when location == "memory"


class TieredStore:
    """Hot TSDB + cold archive with a catalog."""

    def __init__(
        self,
        hot: TimeSeriesStore | None = None,
        cold_dir: str | Path | None = None,
    ) -> None:
        self.hot = hot or TimeSeriesStore()
        self.cold_dir = Path(cold_dir) if cold_dir else None
        if self.cold_dir:
            self.cold_dir.mkdir(parents=True, exist_ok=True)
        self.catalog: list[ArchiveEntry] = []
        self.reloads = 0
        self.archived_chunks = 0

    # -- ingest passes straight to the hot tier ------------------------------------

    def append(self, batch: SeriesBatch) -> int:
        return self.hot.append(batch)

    # -- archiving -------------------------------------------------------------------

    def archive_before(self, t_cut: float) -> int:
        """Move all sealed data older than ``t_cut`` to the cold tier.

        Returns the number of chunks archived.  The hot head (still
        mutable) is sealed first so nothing straddles the boundary.
        """
        self.hot.flush()
        moved = 0
        for key in list(self.hot.keys()):
            chunks, spans = self.hot.export_series(key)
            old = [
                (c, s) for c, s in zip(chunks, spans) if s[1] < t_cut
            ]
            if not old:
                continue
            payload = zlib.compress(pickle.dumps(old))
            t_min = min(s[0] for _, s in old)
            t_max = max(s[1] for _, s in old)
            entry = ArchiveEntry(
                key=key,
                t_min=t_min,
                t_max=t_max,
                n_chunks=len(old),
                location="memory",
                blob=payload,
            )
            if self.cold_dir:
                fname = (
                    f"{key.metric}_{key.component}_{int(t_min)}.cold"
                ).replace("/", "_")
                path = self.cold_dir / fname
                path.write_bytes(payload)
                entry.location = str(path)
                entry.blob = None
            self.catalog.append(entry)
            self.hot.evict_chunks_before(key, t_cut)
            moved += len(old)
        self.archived_chunks += moved
        return moved

    # -- reload ----------------------------------------------------------------------

    def _load_entry(self, entry: ArchiveEntry) -> list[tuple[bytes, tuple[float, float]]]:
        if entry.blob is not None:
            payload = entry.blob
        else:
            payload = Path(entry.location).read_bytes()
        return pickle.loads(zlib.decompress(payload))

    def reload(self, key: MetricKey, t0: float, t1: float) -> int:
        """Bring archived chunks overlapping [t0, t1) back into the hot
        tier; returns the number of chunks reloaded."""
        reloaded = 0
        remaining: list[ArchiveEntry] = []
        for entry in self.catalog:
            if entry.key != key or entry.t_max < t0 or entry.t_min >= t1:
                remaining.append(entry)
                continue
            old = self._load_entry(entry)
            self.hot.import_chunks(
                key, [c for c, _ in old], [s for _, s in old]
            )
            reloaded += entry.n_chunks
            if entry.location != "memory":
                Path(entry.location).unlink(missing_ok=True)
        self.catalog = remaining
        if reloaded:
            self.reloads += 1
        return reloaded

    # -- transparent query --------------------------------------------------------------

    def query(
        self,
        metric: str,
        component: str,
        t0: float = -np.inf,
        t1: float = np.inf,
    ) -> SeriesBatch:
        """Range query that reloads cold spans as needed."""
        key = MetricKey(metric, component)
        if any(
            e.key == key and not (e.t_max < t0 or e.t_min >= t1)
            for e in self.catalog
        ):
            self.reload(key, t0, t1)
        return self.hot.query(metric, component, t0, t1)

    # -- introspection ------------------------------------------------------------------

    def cold_spans(self, metric: str, component: str) -> list[tuple[float, float]]:
        key = MetricKey(metric, component)
        return sorted(
            (e.t_min, e.t_max) for e in self.catalog if e.key == key
        )

    def cache_stats(self):
        """Counters of the hot tier's decompressed-chunk cache."""
        return self.hot.cache_stats()

    def cold_bytes(self) -> int:
        total = 0
        for e in self.catalog:
            if e.blob is not None:
                total += len(e.blob)
            else:
                p = Path(e.location)
                if p.exists():
                    total += p.stat().st_size
        return total
