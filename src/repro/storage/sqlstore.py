"""Relational store over sqlite3 (the MySQL/PMDB class of Section IV-C).

NCSA keeps compute-node performance data "in a pre-existing MySQL
database containing other system and workload data"; NERSC uses MySQL
"for a variety of job, software usage and node-state data".  The value is
*joinability* — jobs against node state against test results — and the
cost is ingest/query scalability, which the storage-comparison bench
measures against the TSDB.

Schema:

* ``jobs``          — job lifecycle records,
* ``node_state``    — periodic node-state snapshots,
* ``test_results``  — benchmark / health-test outcomes,
* ``samples``       — generic numeric samples (the apples-to-apples
  ingest target for the comparison bench).
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass
from typing import Any, Sequence

from ..core.metric import SeriesBatch

__all__ = ["SqlStore", "JobRow", "TestResultRow"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    job_id      INTEGER PRIMARY KEY,
    app         TEXT NOT NULL,
    n_nodes     INTEGER NOT NULL,
    submit_time REAL NOT NULL,
    start_time  REAL,
    end_time    REAL,
    state       TEXT NOT NULL,
    nodes       TEXT NOT NULL DEFAULT ''
);
CREATE TABLE IF NOT EXISTS node_state (
    time        REAL NOT NULL,
    node        TEXT NOT NULL,
    up          INTEGER NOT NULL,
    healthy     INTEGER NOT NULL,
    cpu_util    REAL,
    mem_free_gb REAL,
    power_w     REAL
);
CREATE INDEX IF NOT EXISTS idx_node_state_time ON node_state(time);
CREATE INDEX IF NOT EXISTS idx_node_state_node ON node_state(node);
CREATE TABLE IF NOT EXISTS test_results (
    time    REAL NOT NULL,
    suite   TEXT NOT NULL,
    test    TEXT NOT NULL,
    target  TEXT NOT NULL,
    passed  INTEGER NOT NULL,
    value   REAL,
    detail  TEXT NOT NULL DEFAULT ''
);
CREATE INDEX IF NOT EXISTS idx_test_results_time ON test_results(time);
CREATE TABLE IF NOT EXISTS samples (
    metric    TEXT NOT NULL,
    component TEXT NOT NULL,
    time      REAL NOT NULL,
    value     REAL
);
CREATE INDEX IF NOT EXISTS idx_samples_key
    ON samples(metric, component, time);
"""


@dataclass(frozen=True, slots=True)
class JobRow:
    job_id: int
    app: str
    n_nodes: int
    submit_time: float
    start_time: float | None
    end_time: float | None
    state: str
    nodes: tuple[str, ...]


@dataclass(frozen=True, slots=True)
class TestResultRow:
    __test__ = False  # not a pytest test class despite the name

    time: float
    suite: str
    test: str
    target: str
    passed: bool
    value: float | None
    detail: str


class SqlStore:
    """sqlite3-backed relational store (in-memory by default)."""

    def __init__(self, path: str = ":memory:") -> None:
        # a pipeline's tick may run on whichever worker thread the
        # federation driver hands it; access is still serialized (one
        # tick at a time per pipeline), so cross-thread use is safe
        self._db = sqlite3.connect(path, check_same_thread=False)
        self._db.executescript(_SCHEMA)

    def close(self) -> None:
        self._db.close()

    # -- jobs -------------------------------------------------------------------

    def upsert_job(
        self,
        job_id: int,
        app: str,
        n_nodes: int,
        submit_time: float,
        state: str,
        start_time: float | None = None,
        end_time: float | None = None,
        nodes: Sequence[str] = (),
    ) -> None:
        self._db.execute(
            "INSERT INTO jobs VALUES (?,?,?,?,?,?,?,?) "
            "ON CONFLICT(job_id) DO UPDATE SET "
            "state=excluded.state, start_time=excluded.start_time, "
            "end_time=excluded.end_time, nodes=excluded.nodes",
            (
                job_id, app, n_nodes, submit_time,
                start_time, end_time, state, ",".join(nodes),
            ),
        )
        self._db.commit()

    def job(self, job_id: int) -> JobRow | None:
        row = self._db.execute(
            "SELECT * FROM jobs WHERE job_id=?", (job_id,)
        ).fetchone()
        return self._job_row(row) if row else None

    def jobs(
        self,
        state: str | None = None,
        app: str | None = None,
    ) -> list[JobRow]:
        q = "SELECT * FROM jobs WHERE 1=1"
        args: list[Any] = []
        if state is not None:
            q += " AND state=?"
            args.append(state)
        if app is not None:
            q += " AND app=?"
            args.append(app)
        q += " ORDER BY job_id"
        return [self._job_row(r) for r in self._db.execute(q, args)]

    def jobs_running_at(self, t: float) -> list[JobRow]:
        rows = self._db.execute(
            "SELECT * FROM jobs WHERE start_time IS NOT NULL "
            "AND start_time <= ? AND (end_time IS NULL OR end_time > ?)",
            (t, t),
        )
        return [self._job_row(r) for r in rows]

    @staticmethod
    def _job_row(row: tuple) -> JobRow:
        return JobRow(
            job_id=row[0],
            app=row[1],
            n_nodes=row[2],
            submit_time=row[3],
            start_time=row[4],
            end_time=row[5],
            state=row[6],
            nodes=tuple(row[7].split(",")) if row[7] else (),
        )

    # -- node state -----------------------------------------------------------------

    def insert_node_state(
        self,
        time: float,
        node: str,
        up: bool,
        healthy: bool,
        cpu_util: float | None = None,
        mem_free_gb: float | None = None,
        power_w: float | None = None,
    ) -> None:
        self._db.execute(
            "INSERT INTO node_state VALUES (?,?,?,?,?,?,?)",
            (time, node, int(up), int(healthy), cpu_util, mem_free_gb,
             power_w),
        )

    def unhealthy_nodes_at(self, t0: float, t1: float) -> list[str]:
        rows = self._db.execute(
            "SELECT DISTINCT node FROM node_state "
            "WHERE time >= ? AND time < ? AND healthy = 0 ORDER BY node",
            (t0, t1),
        )
        return [r[0] for r in rows]

    # -- test results ------------------------------------------------------------------

    def insert_test_result(self, r: TestResultRow) -> None:
        self._db.execute(
            "INSERT INTO test_results VALUES (?,?,?,?,?,?,?)",
            (r.time, r.suite, r.test, r.target, int(r.passed), r.value,
             r.detail),
        )

    def test_results(
        self,
        suite: str | None = None,
        test: str | None = None,
        only_failures: bool = False,
        t0: float = float("-inf"),
        t1: float = float("inf"),
    ) -> list[TestResultRow]:
        q = "SELECT * FROM test_results WHERE time >= ? AND time < ?"
        args: list[Any] = [t0, t1]
        if suite is not None:
            q += " AND suite=?"
            args.append(suite)
        if test is not None:
            q += " AND test=?"
            args.append(test)
        if only_failures:
            q += " AND passed=0"
        q += " ORDER BY time"
        return [
            TestResultRow(r[0], r[1], r[2], r[3], bool(r[4]), r[5], r[6])
            for r in self._db.execute(q, args)
        ]

    # -- generic samples (comparison-bench surface) ---------------------------------------

    def append(self, batch: SeriesBatch) -> int:
        rows = [
            (batch.metric, str(c), float(t), float(v))
            for c, t, v in zip(batch.components, batch.times, batch.values)
        ]
        self._db.executemany("INSERT INTO samples VALUES (?,?,?,?)", rows)
        return len(rows)

    def commit(self) -> None:
        self._db.commit()

    def query(
        self,
        metric: str,
        component: str,
        t0: float = float("-inf"),
        t1: float = float("inf"),
    ) -> SeriesBatch:
        rows = self._db.execute(
            "SELECT time, value FROM samples WHERE metric=? AND component=?"
            " AND time >= ? AND time < ? ORDER BY time",
            (metric, component, t0, t1),
        ).fetchall()
        return SeriesBatch.for_component(
            metric,
            component,
            [r[0] for r in rows],
            [r[1] for r in rows],
        )

    def sample_count(self) -> int:
        return self._db.execute("SELECT COUNT(*) FROM samples").fetchone()[0]

    def footprint_bytes(self) -> int:
        """Approximate database footprint via sqlite page accounting."""
        page_count = self._db.execute("PRAGMA page_count").fetchone()[0]
        page_size = self._db.execute("PRAGMA page_size").fetchone()[0]
        return page_count * page_size
