"""Sharded time-series store: K independent TSDBs behind one store API.

One :class:`~repro.storage.tsdb.TimeSeriesStore` eventually serializes
every ingest on one series map — the same wall the paper's sites hit
with single-instance PMDB/InfluxDB deployments before sharding their
stores.  :class:`ShardedTimeSeriesStore` partitions the series space
across K plain stores with *stable* series->shard hashing
(CRC-32 of ``metric@component``, so a series lands on the same shard in
every run and only an explicit shard-count change repartitions),
fans ingest batches out by shard, fans ``query``/``keys`` back in, and
merges per-shard counters into one O(1) ``stats()``.  The query layer
(``query_components`` / ``downsample`` / ``aggregate_across``) is the
shared :class:`~repro.storage.tsdb.SeriesQueryMixin`, so callers cannot
tell K shards from one store — the acceptance oracle the sharding
tests enforce.

Shards are :class:`~repro.core.lifecycle.Supervised`: a failed shard
(``fail_shard``) degrades the store to the remaining shards — writes
bound for it divert into a bounded *redo buffer* (visible as ledger
``pending``; overflow evicts oldest as accounted ``lost``), reads
against it return empty — and on ``recover_shard`` the redo buffer is
replayed into the healed shard, so the only data lost under an outage
is what the redo bound explicitly evicted.
"""

from __future__ import annotations

import weakref
from collections import deque
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from ..core.hashing import stable_bucket
from ..core.lifecycle import Health
from ..core.metric import MetricKey, SeriesBatch
from ..core.tracectx import HOP_INGEST
from .chunkcache import ChunkCache, ChunkCacheStats
from .tsdb import SeriesQueryMixin, StoreStats, TimeSeriesStore

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.executor import ExecutionModel

__all__ = ["ShardedTimeSeriesStore"]


class ShardedTimeSeriesStore(SeriesQueryMixin):
    """K :class:`TimeSeriesStore` shards behind the single-store API.

    All shards share one decompressed-chunk cache, so the cache memory
    bound is global rather than K× per-shard (chunk ids are
    process-unique, so shards can never alias each other's entries).
    """

    def __init__(self, shards: int = 4, chunk_size: int = 512,
                 cache: ChunkCache | None = None,
                 redo_points: int = 100_000,
                 pyramid_levels: "tuple[float, ...] | None" = None,
                 disk_dir: "str | None" = None,
                 hot_bytes: int = 64 << 20,
                 segment_bytes: int = 64 << 20,
                 sync_every_bytes: int = 1 << 20) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.n_shards = int(shards)
        self.cache = cache if cache is not None else ChunkCache()
        if disk_dir is not None:
            # one tier per shard under a common root: per-shard segment
            # files and WALs, so shard-parallel ingest never shares a
            # file handle; the hot budget is per shard
            from pathlib import Path

            from .diskier import DiskTier
            tiers = [
                DiskTier(Path(disk_dir) / f"shard-{i}", hot_bytes=hot_bytes,
                         segment_bytes=segment_bytes,
                         sync_every_bytes=sync_every_bytes)
                for i in range(self.n_shards)
            ]
        else:
            tiers = [None] * self.n_shards
        self.disk_dir = disk_dir
        self.shards = [
            TimeSeriesStore(chunk_size=chunk_size, cache=self.cache,
                            pyramid_levels=pyramid_levels, disk=tiers[i])
            for i in range(self.n_shards)
        ]
        self.pyramid_levels = self.shards[0].pyramid_levels
        # store-wide epoch component: health flips change what reads
        # return without touching any shard's per-metric epochs
        self._health_epoch = 0
        #: optional DeliveryLedger stamped at redo defer/evict/replay
        self.ledger = None
        #: optional simulated-clock callable for ingest freshness stamps
        self.clock = None
        self._health = [Health.OK] * self.n_shards
        # per-shard FIFO of batches parked while the shard is failed
        self._redo: list[deque[SeriesBatch]] = [
            deque() for _ in range(self.n_shards)
        ]
        self.redo_points = int(redo_points)   # bound per shard, in points
        self._redo_depth = [0] * self.n_shards
        self.redo_deferred = 0    # points ever parked
        self.redo_evicted = 0     # points evicted by the bound (lost)
        self.redo_replayed = 0    # points replayed on recovery
        # per-components-array routing memo: synchronized sweeps publish
        # the same component arrays every tick, so the CRC walk runs
        # once per (array, metric) instead of once per batch; entries
        # die with the array (weakref.finalize), so id() cannot alias
        self._route_memo: dict[int, dict[str, np.ndarray]] = {}

    # -- routing ------------------------------------------------------------

    def shard_of(self, metric: str, component: str) -> int:
        """Stable series -> shard mapping (the repartitioning contract:
        the answer changes only when ``n_shards`` does)."""
        return stable_bucket(f"{metric}@{component}", self.n_shards)

    def _routing(self, metric: str, components: np.ndarray,
                 n: int) -> np.ndarray:
        """Per-sample owning-shard indices, memoized per component array.

        Component arrays are treated as immutable once published (the
        collector/merge paths always build fresh arrays), so the memo
        can key on array identity; finalizers evict entries when the
        array dies, before its ``id`` can be reused.
        """
        key = id(components)
        per = self._route_memo.get(key)
        if per is not None:
            idx = per.get(metric)
            if idx is not None:
                return idx
        idx = np.fromiter(
            (self.shard_of(metric, str(c)) for c in components),
            dtype=np.int64,
            count=n,
        )
        if per is None:
            try:
                weakref.finalize(components, self._route_memo.pop, key, None)
            except TypeError:
                return idx   # not weakref-able: never memo on raw id()
            per = self._route_memo[key] = {}
        per[metric] = idx
        return idx

    def _owner(self, metric: str, component: str) -> TimeSeriesStore:
        return self.shards[self.shard_of(metric, component)]

    # -- supervised lifecycle -------------------------------------------------

    def shard_health(self) -> list[Health]:
        """Per-shard condition (the supervision-stage surface)."""
        return list(self._health)

    def health(self) -> Health:
        """Worst shard condition: one failed shard degrades the store."""
        if any(h is Health.FAILED for h in self._health):
            return Health.DEGRADED if self.n_shards > 1 else Health.FAILED
        return Health.OK

    def fail_shard(self, i: int) -> None:
        """Take shard ``i`` out: subsequent writes for it park in the
        redo buffer, reads against it return empty."""
        self._health[i] = Health.FAILED
        self._health_epoch += 1

    def recover_shard(self, i: int) -> int:
        """Bring shard ``i`` back and replay its redo buffer into it.

        Returns the number of points replayed.  Replayed points are
        stamped ``stored`` on the ledger here — ingest-time accounting
        deliberately skipped them (they were ``pending``, not stored).
        """
        self._health[i] = Health.OK
        self._health_epoch += 1
        replayed = 0
        redo = self._redo[i]
        while redo:
            batch = redo.popleft()
            n = self.shards[i].append(batch)
            replayed += n
            if self.ledger is not None:
                self.ledger.stored_batch(batch, n)
        self._redo_depth[i] = 0
        self.redo_replayed += replayed
        return replayed

    def fail(self, reason: str = "") -> None:
        """Supervised surface: fail every shard."""
        for i in range(self.n_shards):
            self.fail_shard(i)

    def heal(self) -> None:
        """Supervised surface: recover every failed shard."""
        for i in range(self.n_shards):
            if self._health[i] is not Health.OK:
                self.recover_shard(i)

    def redo_pending_points(self) -> int:
        """Points parked in redo buffers (the ledger ``pending`` gauge)."""
        return sum(self._redo_depth)

    def _defer(self, i: int, piece: SeriesBatch) -> None:
        """Park a failed shard's sub-batch, evicting oldest past the
        bound (evictions are exact accounted loss)."""
        redo = self._redo[i]
        redo.append(piece)
        self._redo_depth[i] += len(piece)
        self.redo_deferred += len(piece)
        while self._redo_depth[i] > self.redo_points and len(redo) > 1:
            old = redo.popleft()
            self._redo_depth[i] -= len(old)
            self.redo_evicted += len(old)
            if self.ledger is not None:
                self.ledger.lost_batch("shard-redo-overflow", old)
        if self._redo_depth[i] > self.redo_points:
            # a single batch larger than the bound: truncate its head
            old = redo.popleft()
            excess = self._redo_depth[i] - self.redo_points
            kept = SeriesBatch(old.metric, old.components[excess:],
                               old.times[excess:], old.values[excess:])
            redo.appendleft(kept)
            self._redo_depth[i] -= excess
            self.redo_evicted += excess
            if self.ledger is not None:
                self.ledger.lost_points(
                    "shard-redo-overflow", old.metric, excess
                )

    # -- ingest ---------------------------------------------------------------

    def split(self, batch: SeriesBatch) -> list[tuple[int, SeriesBatch]]:
        """Partition a batch into per-owning-shard pieces.

        Returns ``(shard_index, piece)`` pairs in ascending shard
        order.  Stamps the ingest hop on the whole batch first: the
        pieces are fresh SeriesBatch objects that do not carry the
        trace, so this is the last sight of the full hop vector.
        Health is *not* consulted — callers decide whether a piece is
        appended or deferred.
        """
        n = len(batch)
        if n == 0:
            return []
        if self.clock is not None and batch.trace is not None:
            batch.trace.stamp(HOP_INGEST, self.clock())
        idx = self._routing(batch.metric, batch.components, n)
        return [
            (int(shard_i), SeriesBatch(
                batch.metric,
                batch.components[mask],
                batch.times[mask],
                batch.values[mask],
            ))
            for shard_i in np.unique(idx)
            for mask in (idx == shard_i,)
        ]

    def append(self, batch: SeriesBatch) -> int:
        """Split a batch by owning shard and ingest each piece.

        Returns points actually stored; pieces bound for a failed shard
        divert into its redo buffer and do not count (they are the
        ledger's ``pending`` until recovery replays them).
        """
        stored = 0
        for i, piece in self.split(batch):
            if self._health[i] is Health.FAILED:
                self._defer(i, piece)
                continue
            stored += self.shards[i].append(piece)
        return stored

    def append_many(self, batches: Iterable[SeriesBatch]) -> int:
        return sum(self.append(b) for b in batches)

    def append_parallel(
        self,
        batches: "Sequence[SeriesBatch]",
        executor: "ExecutionModel | None" = None,
    ) -> list:
        """Ingest many batches with shard-level concurrency.

        Batches are split serially in publish order; each healthy
        shard's pieces then ingest as one worker task that consumes
        them *in that order*, so every series (which lives on exactly
        one shard) sees the same append sequence as the serial path —
        shard-level parallelism with per-shard serialization means the
        stores themselves need no locks.  Deferred pieces (failed
        shards) park in redo buffers serially, exactly as ``append``
        would.

        Returns one entry per batch: points stored (int), or the first
        exception a piece of that batch raised — callers account a
        raising batch the same way a raising ``append`` is accounted.
        """
        results: list = [0] * len(batches)
        per_shard: list[list[tuple[int, SeriesBatch]]] = [
            [] for _ in range(self.n_shards)
        ]
        for j, batch in enumerate(batches):
            for i, piece in self.split(batch):
                if self._health[i] is Health.FAILED:
                    self._defer(i, piece)
                    continue
                per_shard[i].append((j, piece))
        busy = [i for i in range(self.n_shards) if per_shard[i]]

        def shard_task(i: int):
            shard, pieces = self.shards[i], per_shard[i]

            def run():
                out = []
                for j, piece in pieces:
                    try:
                        out.append((j, shard.append(piece), None))
                    except Exception as exc:
                        out.append((j, 0, exc))
                return out
            return run

        if executor is not None and executor.parallel and len(busy) > 1:
            shard_results = executor.map_ordered(
                [shard_task(i) for i in busy]
            )
        else:
            shard_results = [shard_task(i)() for i in busy]
        errors: dict[int, BaseException] = {}
        for rows in shard_results:
            for j, stored, exc in rows:
                if exc is not None:
                    errors.setdefault(j, exc)
                results[j] += stored
        for j, exc in errors.items():
            results[j] = exc
        return results

    def flush(self) -> None:
        """Seal every open head chunk on every shard."""
        for s in self.shards:
            s.flush()

    # -- query (fan-out) ------------------------------------------------------

    def keys(self, metric: str | None = None) -> list[MetricKey]:
        """Series names across every healthy shard, in single-store
        order (a failed shard's series are unreachable until recovery)."""
        out: list[MetricKey] = []
        for i, s in enumerate(self.shards):
            if self._health[i] is Health.FAILED:
                continue
            out.extend(s.keys(metric))
        return sorted(out, key=str)

    def components(self, metric: str) -> list[str]:
        return [k.component for k in self.keys(metric)]

    def query(
        self,
        metric: str,
        component: str,
        t0: float = -np.inf,
        t1: float = np.inf,
    ) -> SeriesBatch:
        """Range query: one series lives on exactly one shard.  A query
        against a failed shard degrades to empty instead of raising."""
        i = self.shard_of(metric, component)
        if self._health[i] is Health.FAILED:
            return SeriesBatch.empty(metric)
        return self.shards[i].query(metric, component, t0, t1)

    def _series_view(self, metric: str, component: str):
        """Chunk-level surface for the summary-pruned downsample path."""
        return self._owner(metric, component)._series_view(metric, component)

    def series_readable(self, metric: str, component: str) -> bool:
        """False while the owning shard is failed (reads degrade to
        empty) — the serving plane skips such series so planner answers
        match what ``query`` actually returns."""
        return self._health[self.shard_of(metric, component)] is not Health.FAILED

    def query_epoch(self, metric: str) -> int:
        """Store-wide mutation epoch of a metric: per-shard epochs plus
        the health epoch (failing or recovering a shard changes read
        results without writing to any series)."""
        return self._health_epoch + sum(
            s.query_epoch(metric) for s in self.shards
        )

    # -- maintenance / stats ---------------------------------------------------

    def drop_series(self, metric: str, component: str) -> bool:
        return self._owner(metric, component).drop_series(metric, component)

    def stats(self) -> StoreStats:
        """Merged O(1) stats: a sum of K O(1) per-shard counters."""
        per = [s.stats() for s in self.shards]
        return StoreStats(
            series=sum(p.series for p in per),
            samples=sum(p.samples for p in per),
            sealed_chunks=sum(p.sealed_chunks for p in per),
            compressed_bytes=sum(p.compressed_bytes for p in per),
            raw_bytes=sum(p.raw_bytes for p in per),
        )

    def per_shard_stats(self) -> list[StoreStats]:
        """Per-shard counters (the ``selfmon.store.shard_*`` surface)."""
        return [s.stats() for s in self.shards]

    def cache_stats(self) -> ChunkCacheStats:
        """Counters of the shared decompressed-chunk cache."""
        return self.cache.stats()

    # hooks used by the out-of-core disk tier -----------------------------------

    def disk_stats(self):
        """Merged per-shard disk-tier counters, or None when in-memory."""
        from .diskier import merge_disk_stats
        per = [s.disk_stats() for s in self.shards]
        per = [p for p in per if p is not None]
        return merge_disk_stats(per) if per else None

    def snapshot(self) -> list:
        """Snapshot every disk-backed shard (per-shard manifests)."""
        return [s.snapshot() for s in self.shards if s.disk is not None]

    def points_by_metric(self) -> dict[str, int]:
        """Per-metric stored point counts merged across shards."""
        out: dict[str, int] = {}
        for s in self.shards:
            for metric, n in s.points_by_metric().items():
                out[metric] = out.get(metric, 0) + n
        return out

    # hooks used by the hierarchical tier manager -------------------------------

    def export_series(self, key: MetricKey):
        return self.shards[self.shard_of(key.metric, key.component)].export_series(key)

    def evict_chunks_before(self, key: MetricKey, t_cut: float) -> int:
        return self._owner(key.metric, key.component).evict_chunks_before(key, t_cut)

    def import_chunks(self, key, chunks, spans) -> None:
        self._owner(key.metric, key.component).import_chunks(key, chunks, spans)
