"""Sharded time-series store: K independent TSDBs behind one store API.

One :class:`~repro.storage.tsdb.TimeSeriesStore` eventually serializes
every ingest on one series map — the same wall the paper's sites hit
with single-instance PMDB/InfluxDB deployments before sharding their
stores.  :class:`ShardedTimeSeriesStore` partitions the series space
across K plain stores with *stable* series->shard hashing
(CRC-32 of ``metric@component``, so a series lands on the same shard in
every run and only an explicit shard-count change repartitions),
fans ingest batches out by shard, fans ``query``/``keys`` back in, and
merges per-shard counters into one O(1) ``stats()``.  The query layer
(``query_components`` / ``downsample`` / ``aggregate_across``) is the
shared :class:`~repro.storage.tsdb.SeriesQueryMixin`, so callers cannot
tell K shards from one store — the acceptance oracle the sharding
tests enforce.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..core.hashing import stable_bucket
from ..core.metric import MetricKey, SeriesBatch
from .chunkcache import ChunkCache, ChunkCacheStats
from .tsdb import SeriesQueryMixin, StoreStats, TimeSeriesStore

__all__ = ["ShardedTimeSeriesStore"]


class ShardedTimeSeriesStore(SeriesQueryMixin):
    """K :class:`TimeSeriesStore` shards behind the single-store API.

    All shards share one decompressed-chunk cache, so the cache memory
    bound is global rather than K× per-shard (chunk ids are
    process-unique, so shards can never alias each other's entries).
    """

    def __init__(self, shards: int = 4, chunk_size: int = 512,
                 cache: ChunkCache | None = None) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.n_shards = int(shards)
        self.cache = cache if cache is not None else ChunkCache()
        self.shards = [
            TimeSeriesStore(chunk_size=chunk_size, cache=self.cache)
            for _ in range(self.n_shards)
        ]

    # -- routing ------------------------------------------------------------

    def shard_of(self, metric: str, component: str) -> int:
        """Stable series -> shard mapping (the repartitioning contract:
        the answer changes only when ``n_shards`` does)."""
        return stable_bucket(f"{metric}@{component}", self.n_shards)

    def _owner(self, metric: str, component: str) -> TimeSeriesStore:
        return self.shards[self.shard_of(metric, component)]

    # -- ingest ---------------------------------------------------------------

    def append(self, batch: SeriesBatch) -> int:
        """Split a batch by owning shard and ingest each piece."""
        n = len(batch)
        if n == 0:
            return 0
        idx = np.fromiter(
            (self.shard_of(batch.metric, str(c)) for c in batch.components),
            dtype=np.int64,
            count=n,
        )
        stored = 0
        for shard_i in np.unique(idx):
            mask = idx == shard_i
            stored += self.shards[int(shard_i)].append(
                SeriesBatch(
                    batch.metric,
                    batch.components[mask],
                    batch.times[mask],
                    batch.values[mask],
                )
            )
        return stored

    def append_many(self, batches: Iterable[SeriesBatch]) -> int:
        return sum(self.append(b) for b in batches)

    def flush(self) -> None:
        """Seal every open head chunk on every shard."""
        for s in self.shards:
            s.flush()

    # -- query (fan-out) ------------------------------------------------------

    def keys(self, metric: str | None = None) -> list[MetricKey]:
        """Series names across every shard, in single-store order."""
        out: list[MetricKey] = []
        for s in self.shards:
            out.extend(s.keys(metric))
        return sorted(out, key=str)

    def components(self, metric: str) -> list[str]:
        return [k.component for k in self.keys(metric)]

    def query(
        self,
        metric: str,
        component: str,
        t0: float = -np.inf,
        t1: float = np.inf,
    ) -> SeriesBatch:
        """Range query: one series lives on exactly one shard."""
        return self._owner(metric, component).query(metric, component, t0, t1)

    def _series_view(self, metric: str, component: str):
        """Chunk-level surface for the summary-pruned downsample path."""
        return self._owner(metric, component)._series_view(metric, component)

    # -- maintenance / stats ---------------------------------------------------

    def drop_series(self, metric: str, component: str) -> bool:
        return self._owner(metric, component).drop_series(metric, component)

    def stats(self) -> StoreStats:
        """Merged O(1) stats: a sum of K O(1) per-shard counters."""
        per = [s.stats() for s in self.shards]
        return StoreStats(
            series=sum(p.series for p in per),
            samples=sum(p.samples for p in per),
            sealed_chunks=sum(p.sealed_chunks for p in per),
            compressed_bytes=sum(p.compressed_bytes for p in per),
            raw_bytes=sum(p.raw_bytes for p in per),
        )

    def per_shard_stats(self) -> list[StoreStats]:
        """Per-shard counters (the ``selfmon.store.shard_*`` surface)."""
        return [s.stats() for s in self.shards]

    def cache_stats(self) -> ChunkCacheStats:
        """Counters of the shared decompressed-chunk cache."""
        return self.cache.stats()

    # hooks used by the hierarchical tier manager -------------------------------

    def export_series(self, key: MetricKey):
        return self.shards[self.shard_of(key.metric, key.component)].export_series(key)

    def evict_chunks_before(self, key: MetricKey, t_cut: float) -> int:
        return self._owner(key.metric, key.component).evict_chunks_before(key, t_cut)

    def import_chunks(self, key, chunks, spans) -> None:
        self._owner(key.metric, key.component).import_chunks(key, chunks, spans)
