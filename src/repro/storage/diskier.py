"""Out-of-core disk tier: chunk segments, a WAL, and crash recovery.

The stores in this repro were RAM-resident, capping campaign length at
memory size.  This module adds the backend the paper's sites actually
run (DCDB and the MPCDF stack both persist sensor data behind a hot
cache): an append-only on-disk tier under
:class:`~repro.storage.tsdb.TimeSeriesStore` with three moving parts:

* **Segment files** (``seg-NNNNNN.dat``): sealing a chunk appends its
  compressed blob to the active segment as a self-describing record
  (magic + lengths + crc32 + metric/component + blob).  Sealed chunks
  are immutable byte blobs, so the copy on disk is exact forever.
* **Hot tier**: resident blobs are LRU-tracked against a ``hot_bytes``
  budget.  When the budget is exceeded the coldest sealed blobs are
  *spilled* — the series' chunk list keeps a :class:`ChunkRef`
  ``(segment, offset, len)`` and drops the bytes.  Spilled reads mmap
  the segment and decode straight from the mapped buffer (the
  vectorized codec accepts any buffer; no intermediate copy), with
  decompressed arrays still served through the shared
  :class:`~repro.storage.chunkcache.ChunkCache`.
* **WAL** (``wal-NNNNNN.log``): every appended batch is logged before
  it reaches a head chunk, so unsealed heads survive a crash.  Both
  WAL and segments are fsync-batched: durability advances at
  ``sync_every_bytes`` boundaries, and anything past the last sync is
  *accounted loss* after a crash (the ledger names it), never silence.

``snapshot()`` writes a manifest (segment extents, per-series chunk
index, head samples, and serialized pyramid partials so rollups do not
refold from a full decompress) and rotates the WAL;
:func:`recover_store` / :func:`recover_sharded` rebuild a store from
manifest + segment scan + WAL replay, deduplicating the overlap
exactly by per-series arrival counts.

File-handle lifetime is auditable by construction: every long-lived
``open()``/``mmap`` in this package is either context-managed or
registered with the owning tier's :class:`_HandleRegistry` (the
``check_fd_lifetime`` lint gate enforces this).
"""

from __future__ import annotations

import mmap
import os
import pickle
import struct
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

import numpy as np

from ..core.metric import MetricKey, SeriesBatch

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from .chunkcache import ChunkCache
    from .tsdb import TimeSeriesStore, _Series

__all__ = [
    "ChunkRef",
    "DiskTier",
    "DiskTierStats",
    "RecoveryReport",
    "merge_disk_stats",
    "recover_store",
    "recover_sharded",
]


# record framing ------------------------------------------------------------
#
# segment record: magic, metric_len, comp_len, blob_len, crc32 over
# (metric + comp + blob); the ChunkRef offset points at the blob itself
# so mmap reads land on the compressed bytes directly.
_SEG_HDR = struct.Struct("<2sHHII")
_SEG_MAGIC = b"SG"
# wal record: magic, payload_len, crc32(payload)
_WAL_HDR = struct.Struct("<2sII")
_WAL_MAGIC = b"WL"

_MANIFEST = "manifest.pkl"


@dataclass(frozen=True, slots=True)
class ChunkRef:
    """Location of one sealed chunk's blob inside a segment file."""

    segment: int
    offset: int
    length: int


@dataclass(frozen=True, slots=True)
class DiskTierStats:
    """Counters of one disk tier (merged across shards by
    :func:`merge_disk_stats`; the selfmon plane samples these)."""

    segments: int
    disk_bytes: int        # segment file bytes + wal bytes
    wal_bytes: int
    hot_bytes: int         # resident sealed-blob bytes (the budget bound)
    hot_chunks: int
    spills: int            # blobs demoted to ref-only (budget + eviction)
    loads: int             # spilled-chunk reads served from mmap
    map_hits: int          # loads served by an already-live mapping
    remaps: int
    wal_records: int
    wal_syncs: int


def merge_disk_stats(parts: Iterable[DiskTierStats]) -> DiskTierStats:
    """Field-wise sum (per-shard tiers -> one store-level view)."""
    acc = [0] * 11
    for p in parts:
        acc[0] += p.segments
        acc[1] += p.disk_bytes
        acc[2] += p.wal_bytes
        acc[3] += p.hot_bytes
        acc[4] += p.hot_chunks
        acc[5] += p.spills
        acc[6] += p.loads
        acc[7] += p.map_hits
        acc[8] += p.remaps
        acc[9] += p.wal_records
        acc[10] += p.wal_syncs
    return DiskTierStats(*acc)


class _HandleRegistry:
    """The single owner of every long-lived file object and mmap.

    The ``check_fd_lifetime`` lint gate requires each ``open()``/
    ``mmap.mmap()`` in ``src/repro/storage`` to be context-managed or
    carry a ``# handle-owner:`` marker naming its registry; adopted
    handles all die in :meth:`close_all`, the one teardown point
    (``close()`` and ``simulate_crash()`` both route through it).
    """

    __slots__ = ("_handles",)

    def __init__(self) -> None:
        self._handles: list = []

    def adopt(self, handle):
        self._handles.append(handle)
        return handle

    def release(self, handle) -> None:
        """Close one handle now and forget it."""
        try:
            self._handles.remove(handle)
        except ValueError:
            pass
        try:
            handle.close()
        except (OSError, ValueError, BufferError):
            pass

    def close_all(self) -> None:
        while self._handles:
            try:
                self._handles.pop().close()
            except (OSError, ValueError, BufferError):
                pass  # a still-exported mmap is freed when its views die


class _Segment:
    """One append-only segment file plus its (lazy) read mapping."""

    __slots__ = ("seg_id", "path", "writer", "reader", "map", "mapped",
                 "size", "synced")

    def __init__(self, seg_id: int, path: Path) -> None:
        self.seg_id = seg_id
        self.path = path
        self.writer = None
        self.reader = None
        self.map: mmap.mmap | None = None
        self.mapped = 0                      # bytes covered by self.map
        self.size = path.stat().st_size if path.exists() else 0
        self.synced = self.size              # on-disk bytes known durable


class _Wal:
    """One write-ahead-log generation (append-only, length+crc framed)."""

    __slots__ = ("gen", "path", "writer", "size", "synced", "records",
                 "syncs")

    def __init__(self, gen: int, path: Path) -> None:
        self.gen = gen
        self.path = path
        self.writer = None
        self.size = 0
        self.synced = 0
        self.records = 0
        self.syncs = 0


def _encode_wal_batch(metric: str, comps: Sequence, times: np.ndarray,
                      values: np.ndarray) -> bytes:
    """Frame one batch.  Mode 1 stores a uniform component once (the
    series-chunk ingest shape, where per-element encoding would dominate
    the whole WAL cost); mode 0 is the general per-element layout."""
    mb = metric.encode("utf-8")
    n = len(comps)
    t = np.ascontiguousarray(times, dtype=np.float64)
    v = np.ascontiguousarray(values, dtype=np.float64)
    c0 = comps[0] if n else ""
    if n and bool((np.asarray(comps, dtype=object) == c0).all()):
        cb = str(c0).encode("utf-8")
        comp_block = struct.pack("<H", len(cb)) + cb
        mode = 1
    else:
        cbs = [str(c).encode("utf-8") for c in comps]
        lens = np.fromiter((len(b) for b in cbs), dtype=np.uint32,
                           count=n)
        comp_block = lens.tobytes() + b"".join(cbs)
        mode = 0
    return b"".join((
        struct.pack("<BHI", mode, len(mb), n), mb, comp_block,
        t.tobytes(), v.tobytes(),
    ))


def _decode_wal_batch(
    payload: bytes,
) -> tuple[str, list[str], np.ndarray, np.ndarray]:
    mode, mlen, n = struct.unpack_from("<BHI", payload, 0)
    pos = 7
    metric = payload[pos:pos + mlen].decode("utf-8")
    pos += mlen
    if mode == 1:
        (clen,) = struct.unpack_from("<H", payload, pos)
        pos += 2
        comps = [payload[pos:pos + clen].decode("utf-8")] * n
        pos += clen
    else:
        lens = np.frombuffer(payload, dtype=np.uint32, count=n,
                             offset=pos)
        pos += 4 * n
        comps = []
        for ln in lens.tolist():
            comps.append(payload[pos:pos + ln].decode("utf-8"))
            pos += ln
    times = np.frombuffer(payload, dtype=np.float64, count=n,
                          offset=pos).copy()
    pos += 8 * n
    values = np.frombuffer(payload, dtype=np.float64, count=n,
                           offset=pos).copy()
    return metric, comps, times, values


def _scan_wal(data: bytes) -> tuple[list[bytes], int]:
    """Parse wal payloads up to the first torn/corrupt record.

    Returns ``(payloads, consumed)``: bytes past ``consumed`` are a torn
    tail (counted, dropped — the ledger accounts the points they held).
    """
    out: list[bytes] = []
    pos = 0
    size = len(data)
    hdr = _WAL_HDR.size
    while pos + hdr <= size:
        magic, plen, crc = _WAL_HDR.unpack_from(data, pos)
        end = pos + hdr + plen
        if magic != _WAL_MAGIC or end > size:
            break
        payload = bytes(data[pos + hdr:end])
        if zlib.crc32(payload) != crc:
            break
        out.append(payload)
        pos = end
    return out, pos


def _scan_segment(
    data, start: int
) -> tuple[list[tuple[str, str, int, bytes]], int]:
    """Parse segment records from ``start`` up to the first torn record.

    Returns ``([(metric, component, blob_offset, blob)], consumed)``.
    """
    out: list[tuple[str, str, int, bytes]] = []
    pos = start
    size = len(data)
    hdr = _SEG_HDR.size
    while pos + hdr <= size:
        magic, mlen, clen, blen, crc = _SEG_HDR.unpack_from(data, pos)
        boff = pos + hdr + mlen + clen
        end = boff + blen
        if magic != _SEG_MAGIC or end > size:
            break
        body = bytes(data[pos + hdr:end])
        if zlib.crc32(body) != crc:
            break
        metric = body[:mlen].decode("utf-8")
        comp = body[mlen:mlen + clen].decode("utf-8")
        out.append((metric, comp, boff, body[mlen + clen:]))
        pos = end
    return out, pos


class DiskTier:
    """The on-disk tier under one :class:`TimeSeriesStore`.

    One tier serves exactly one store (per-shard tiers live in
    subdirectories of a common root).  Not thread-safe on its own — it
    inherits the store's threading contract: all mutation of one shard
    happens on one worker at a time, queries run between ticks.
    """

    def __init__(
        self,
        root: str | Path,
        hot_bytes: int = 64 << 20,
        segment_bytes: int = 64 << 20,
        sync_every_bytes: int = 1 << 20,
    ) -> None:
        if hot_bytes < 0:
            raise ValueError("hot_bytes must be >= 0")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hot_bytes = int(hot_bytes)
        self.segment_bytes = int(segment_bytes)
        self.sync_every_bytes = int(sync_every_bytes)
        self._handles = _HandleRegistry()
        self._dead = False
        # resume-aware: reopen existing segments (recovery reuses the
        # directory), append to the highest; WAL always starts a fresh
        # generation so older generations stay replayable.
        self._segments: dict[int, _Segment] = {}
        for p in sorted(self.root.glob("seg-*.dat")):
            sid = int(p.stem.split("-")[1])
            self._segments[sid] = _Segment(sid, p)
        self._active_id = max(self._segments) if self._segments else 0
        if not self._segments:
            self._segments[0] = _Segment(0, self._seg_path(0))
        wal_gens = [int(p.stem.split("-")[1])
                    for p in self.root.glob("wal-*.log")]
        self._wal = self._new_wal(max(wal_gens) + 1 if wal_gens else 0)
        # LRU of resident sealed blobs: chunk id -> owning series
        self._hot: OrderedDict[int, "_Series"] = OrderedDict()
        self.hot_bytes_used = 0
        self._unsynced = 0
        self._spills = 0
        self._loads = 0
        self._map_hits = 0
        self._remaps = 0

    # -- paths / handles ----------------------------------------------------

    def _seg_path(self, seg_id: int) -> Path:
        return self.root / f"seg-{seg_id:06d}.dat"

    def _wal_path(self, gen: int) -> Path:
        return self.root / f"wal-{gen:06d}.log"

    def _new_wal(self, gen: int) -> _Wal:
        wal = _Wal(gen, self._wal_path(gen))
        wal.writer = self._handles.adopt(
            open(wal.path, "ab",  # handle-owner: DiskTier._handles
                 buffering=1 << 20)
        )
        return wal

    def _writer(self, seg: _Segment):
        if seg.writer is None:
            seg.writer = self._handles.adopt(
                open(seg.path, "ab",  # handle-owner: DiskTier._handles
                     buffering=1 << 20)
            )
        return seg.writer

    def _check_alive(self) -> None:
        if self._dead:
            raise RuntimeError(
                "disk tier crashed (simulate_crash); recover a fresh "
                "store with repro.storage.diskier.recover_store"
            )

    # -- write path ---------------------------------------------------------

    def wal_append(self, batch: SeriesBatch) -> None:
        """Log one ingest batch before it reaches any head chunk."""
        self._check_alive()
        payload = _encode_wal_batch(batch.metric, batch.components,
                                    batch.times, batch.values)
        wal = self._wal
        wal.writer.write(_WAL_HDR.pack(_WAL_MAGIC, len(payload),
                                       zlib.crc32(payload)) + payload)
        wal.size += _WAL_HDR.size + len(payload)
        wal.records += 1
        self._unsynced += _WAL_HDR.size + len(payload)
        if self._unsynced >= self.sync_every_bytes:
            self.sync()

    def append_blob(self, metric: str, comp: str, blob: bytes) -> ChunkRef:
        """Append one sealed blob to the active segment -> its ref."""
        self._check_alive()
        seg = self._segments[self._active_id]
        if seg.size >= self.segment_bytes:
            seg = self._roll_segment(seg)
        mb = metric.encode("utf-8")
        cb = comp.encode("utf-8")
        body = mb + cb + blob
        w = self._writer(seg)
        w.write(_SEG_HDR.pack(_SEG_MAGIC, len(mb), len(cb), len(blob),
                              zlib.crc32(body)) + body)
        off = seg.size + _SEG_HDR.size + len(mb) + len(cb)
        seg.size = off + len(blob)
        self._unsynced += seg.size - off + _SEG_HDR.size + len(mb) + len(cb)
        if self._unsynced >= self.sync_every_bytes:
            # WAL-bypassing ingest (chunk-aligned batches) must still
            # honor the fsync cadence, not just WAL-logged appends
            self.sync()
        return ChunkRef(seg.seg_id, off, len(blob))

    def _roll_segment(self, seg: _Segment) -> _Segment:
        if seg.writer is not None:
            seg.writer.flush()
            os.fsync(seg.writer.fileno())
            seg.synced = seg.size
            self._handles.release(seg.writer)
            seg.writer = None
        nid = seg.seg_id + 1
        new = self._segments[nid] = _Segment(nid, self._seg_path(nid))
        self._active_id = nid
        return new

    def on_seal(self, series: "_Series", blob: bytes, cid: int) -> ChunkRef:
        """Seal hook: persist the blob, track it in the hot LRU."""
        ref = self.append_blob(series.key.metric, series.key.component, blob)
        self._hot[cid] = series
        self.hot_bytes_used += len(blob)
        return ref

    def enforce_budget(self) -> int:
        """Spill coldest resident blobs until the hot tier fits."""
        n = 0
        while self.hot_bytes_used > self.hot_bytes and self._hot:
            cid, series = self._hot.popitem(last=False)
            idx = series.chunk_ids.index(cid)
            series.chunks[idx] = None
            self.hot_bytes_used -= series.chunk_refs[idx].length
            self._spills += 1
            n += 1
        return n

    def demote(self, series: "_Series", idx: int) -> bool:
        """Spill one specific resident chunk (the eviction-as-demotion
        path); returns False if it was already ref-only."""
        if series.chunks[idx] is None:
            return False
        cid = series.chunk_ids[idx]
        self._hot.pop(cid, None)
        series.chunks[idx] = None
        self.hot_bytes_used -= series.chunk_refs[idx].length
        self._spills += 1
        return True

    def touch(self, cid: int) -> None:
        if cid in self._hot:
            self._hot.move_to_end(cid)

    def forget(self, series: "_Series") -> None:
        """Drop a series' resident chunks from the LRU (drop_series)."""
        for cid, blob, ref in zip(series.chunk_ids, series.chunks,
                                  series.chunk_refs):
            if blob is not None and self._hot.pop(cid, None) is not None:
                self.hot_bytes_used -= ref.length if ref else len(blob)

    # -- read path ----------------------------------------------------------

    def load(self, ref: ChunkRef) -> memoryview:
        """Zero-copy view of a spilled blob from the segment mapping.

        The vectorized codec decodes directly from this view
        (``np.frombuffer``/``struct.unpack_from`` accept any buffer);
        decompressed arrays never alias the mapping, so remaps are safe
        once the decode returns.
        """
        self._check_alive()
        seg = self._segments[ref.segment]
        end = ref.offset + ref.length
        self._loads += 1
        if seg.map is None or seg.mapped < end:
            self._remap(seg)
        else:
            self._map_hits += 1
        return memoryview(seg.map)[ref.offset:end]

    def _remap(self, seg: _Segment) -> None:
        if seg.writer is not None:
            seg.writer.flush()        # make buffered appends visible
        if seg.reader is None:
            seg.reader = self._handles.adopt(
                open(seg.path, "rb")  # handle-owner: DiskTier._handles
            )
        if seg.map is not None:
            self._handles.release(seg.map)
        size = os.fstat(seg.reader.fileno()).st_size
        seg.map = self._handles.adopt(
            mmap.mmap(seg.reader.fileno(), size,  # handle-owner: DiskTier._handles
                      access=mmap.ACCESS_READ)
        )
        seg.mapped = size
        self._remaps += 1

    # -- durability ---------------------------------------------------------

    def sync(self) -> None:
        """Fsync-batch point: everything written so far becomes durable."""
        self._check_alive()
        for seg in self._segments.values():
            if seg.writer is not None and seg.size > seg.synced:
                seg.writer.flush()
                os.fsync(seg.writer.fileno())
                seg.synced = seg.size
        wal = self._wal
        if wal.size > wal.synced:
            wal.writer.flush()
            os.fsync(wal.writer.fileno())
            wal.synced = wal.size
            wal.syncs += 1
        self._unsynced = 0

    def simulate_crash(self) -> None:
        """Power-loss model: drop all process state, truncate every file
        to its last-synced extent.

        A plain SIGKILL would leave the OS page cache intact (buffered
        but un-fsynced bytes still land on disk), which under-tests
        recovery; truncating to the synced marks is the *pessimistic*
        power-loss outcome the WAL contract is written against.
        """
        marks = [(seg.path, seg.synced) for seg in self._segments.values()]
        marks.append((self._wal.path, self._wal.synced))
        self._dead = True
        self._handles.close_all()
        for path, n in marks:
            if path.exists():
                with open(path, "r+b") as f:
                    f.truncate(n)

    def close(self) -> None:
        if not self._dead:
            self.sync()
        self._dead = True
        self._handles.close_all()

    # -- snapshot -----------------------------------------------------------

    def snapshot(self, store: "TimeSeriesStore") -> Path:
        """Write a manifest of the store's full state; rotate the WAL.

        The manifest carries per-series chunk refs/spans/summaries/
        hints, head samples, and serialized pyramid partials — restore
        rebuilds pyramids from the partials without decompressing any
        chunk.  Covered segment extents bound the recovery scan, and
        WAL generations older than the manifest are deleted once the
        manifest is durably in place (write-tmp, fsync, rename).
        """
        self._check_alive()
        self.sync()
        series_state = {}
        for key, s in store._series.items():
            series_state[(key.metric, key.component)] = {
                "refs": [(r.segment, r.offset, r.length)
                         for r in s.chunk_refs],
                "spans": list(s.chunk_spans),
                "summaries": list(s.summaries),
                "hints": list(s.chunk_hints),
                "n_sealed": s.n_sealed_samples,
                "sealed_bytes": s.sealed_bytes,
                "head_t": list(s.head_t),
                "head_v": list(s.head_v),
                "pyramid": (s.pyramid.export_state()
                            if s.pyramid is not None else None),
            }
        old_wal = self._wal
        self._handles.release(old_wal.writer)
        new_wal = self._new_wal(old_wal.gen + 1)
        new_wal.syncs = old_wal.syncs
        new_wal.records = old_wal.records
        self._wal = new_wal
        manifest = {
            "version": 1,
            "chunk_size": store.chunk_size,
            "pyramid_levels": store.pyramid_levels,
            "segments": {sid: seg.synced
                         for sid, seg in self._segments.items()},
            "wal_gen": new_wal.gen,
            "series": series_state,
        }
        tmp = self.root / (_MANIFEST + ".tmp")
        with open(tmp, "wb") as f:
            pickle.dump(manifest, f, protocol=pickle.HIGHEST_PROTOCOL)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, self.root / _MANIFEST)
        try:
            dfd = os.open(self.root, os.O_RDONLY)
            try:
                os.fsync(dfd)
            finally:
                os.close(dfd)
        except OSError:  # pragma: no cover - platform-dependent
            pass
        for gen_path in self.root.glob("wal-*.log"):
            if int(gen_path.stem.split("-")[1]) < new_wal.gen:
                gen_path.unlink(missing_ok=True)
        return self.root / _MANIFEST

    # -- stats --------------------------------------------------------------

    def stats(self) -> DiskTierStats:
        seg_bytes = sum(seg.size for seg in self._segments.values())
        return DiskTierStats(
            segments=len(self._segments),
            disk_bytes=seg_bytes + self._wal.size,
            wal_bytes=self._wal.size,
            hot_bytes=self.hot_bytes_used,
            hot_chunks=len(self._hot),
            spills=self._spills,
            loads=self._loads,
            map_hits=self._map_hits,
            remaps=self._remaps,
            wal_records=self._wal.records,
            wal_syncs=self._wal.syncs,
        )


# --------------------------------------------------------------------------
# recovery
# --------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class RecoveryReport:
    """What a recovery found and rebuilt (per store; shards summed)."""

    series: int
    points: int                  # total points in the recovered store
    manifest_chunks: int         # sealed chunks restored from the manifest
    scanned_chunks: int          # post-manifest chunks found by segment scan
    wal_points_replayed: int
    wal_points_skipped: int      # already covered by sealed chunks
    torn_segment_bytes: int
    torn_wal_bytes: int

    def merged(self, other: "RecoveryReport") -> "RecoveryReport":
        return RecoveryReport(*(a + b for a, b in
                                zip(self._astuple(), other._astuple())))

    def _astuple(self) -> tuple:
        return (self.series, self.points, self.manifest_chunks,
                self.scanned_chunks, self.wal_points_replayed,
                self.wal_points_skipped, self.torn_segment_bytes,
                self.torn_wal_bytes)


def _read_manifest(root: Path) -> dict | None:
    path = root / _MANIFEST
    if not path.exists():
        return None
    with open(path, "rb") as f:
        return pickle.load(f)


def _scan_segments_on_disk(
    root: Path, covered: Mapping[int, int]
) -> tuple[list[tuple[int, str, str, int, bytes]], int]:
    """Records beyond each segment's manifest-covered extent.

    Torn tails are truncated away on disk so the reopened tier appends
    at a clean record boundary.  Returns
    ``([(segment, metric, comp, blob_off, blob)], torn_bytes)``.
    """
    out: list[tuple[int, str, str, int, bytes]] = []
    torn = 0
    for path in sorted(root.glob("seg-*.dat")):
        sid = int(path.stem.split("-")[1])
        start = int(covered.get(sid, 0))
        size = path.stat().st_size
        if size <= start:
            continue
        with open(path, "rb") as f:
            data = f.read()
        recs, consumed = _scan_segment(data, start)
        out.extend((sid, m, c, off, blob) for m, c, off, blob in recs)
        if consumed < size:
            torn += size - consumed
            with open(path, "r+b") as f:
                f.truncate(consumed)
    return out, torn


def _read_wal_records(root: Path, min_gen: int) -> tuple[list[bytes], int]:
    payloads: list[bytes] = []
    torn = 0
    gens = sorted((int(p.stem.split("-")[1]), p)
                  for p in root.glob("wal-*.log"))
    for gen, path in gens:
        if gen < min_gen:
            continue
        with open(path, "rb") as f:
            data = f.read()
        recs, consumed = _scan_wal(data)
        payloads.extend(recs)
        torn += len(data) - consumed
    return payloads, torn


def recover_store(
    root: str | Path,
    hot_bytes: int = 64 << 20,
    segment_bytes: int = 64 << 20,
    sync_every_bytes: int = 1 << 20,
    cache: "ChunkCache | None" = None,
    snapshot_after: bool = True,
) -> tuple["TimeSeriesStore", RecoveryReport]:
    """Rebuild a :class:`TimeSeriesStore` from its disk tier.

    Three sources compose, deduplicated by per-series arrival counts:

    1. the manifest (sealed-chunk index + heads + pyramid partials),
    2. a scan of segment bytes past the manifest-covered extents
       (chunks sealed after the last snapshot — one decompress each to
       rebuild summaries/hints and fold pyramids),
    3. WAL replay of batches not yet represented by sealed chunks.

    Every restored sealed chunk starts *spilled* (ref-only), so the
    recovered resident footprint is bounded regardless of history
    size.  With ``snapshot_after`` (default) the recovery ends by
    writing a fresh manifest, so repeated crashes never replay more
    than one campaign's tail.
    """
    from .rollup import SeriesPyramid
    from .tsdb import (TimeSeriesStore, _chunk_ids, _summarize,
                       _xor_token_lens, decompress_chunk)

    root = Path(root)
    manifest = _read_manifest(root)
    covered = manifest["segments"] if manifest else {}
    min_gen = manifest["wal_gen"] if manifest else 0
    scanned, torn_seg = _scan_segments_on_disk(root, covered)
    wal_payloads, torn_wal = _read_wal_records(root, min_gen)

    tier = DiskTier(root, hot_bytes=hot_bytes, segment_bytes=segment_bytes,
                    sync_every_bytes=sync_every_bytes)
    chunk_size = manifest["chunk_size"] if manifest else 512
    pyramid_levels = manifest["pyramid_levels"] if manifest else None
    store = TimeSeriesStore(chunk_size=chunk_size, cache=cache,
                            pyramid_levels=pyramid_levels, disk=tier)

    manifest_chunks = 0
    manifest_heads: dict[MetricKey, tuple[list, list]] = {}
    base_sealed: dict[MetricKey, int] = {}
    if manifest:
        for (metric, comp), st in manifest["series"].items():
            key = MetricKey(metric, comp)
            s = store._new_series(key)
            s.chunk_refs = [ChunkRef(*r) for r in st["refs"]]
            s.chunks = [None] * len(s.chunk_refs)
            s.chunk_spans = list(st["spans"])
            s.summaries = list(st["summaries"])
            s.chunk_hints = list(st["hints"])
            s.chunk_ids = [next(_chunk_ids) for _ in s.chunk_refs]
            s.n_sealed_samples = int(st["n_sealed"])
            s.sealed_bytes = int(st["sealed_bytes"])
            if st["pyramid"] is not None and s.pyramid is not None:
                s.pyramid = SeriesPyramid.from_state(st["pyramid"])
            manifest_chunks += len(s.chunk_refs)
            manifest_heads[key] = (list(st["head_t"]), list(st["head_v"]))
            base_sealed[key] = s.n_sealed_samples
            store._samples += s.n_sealed_samples
            store._sealed_samples += s.n_sealed_samples
            store._sealed_chunks += len(s.chunk_refs)
            store._sealed_bytes += s.sealed_bytes

    # 2) chunks sealed after the snapshot: one decompress each rebuilds
    # span/summary/hint and folds the pyramid; the blob stays on disk.
    scanned_chunks = 0
    for sid, metric, comp, boff, blob in scanned:
        ct, cv = decompress_chunk(blob)
        if not len(ct):
            continue
        key = MetricKey(metric, comp)
        s = store._series.get(key) or store._new_series(key)
        s.chunks.append(None)
        s.chunk_refs.append(ChunkRef(sid, boff, len(blob)))
        s.chunk_spans.append((float(ct[0]), float(ct[-1])))
        s.chunk_ids.append(next(_chunk_ids))
        s.summaries.append(_summarize(ct, cv))
        s.chunk_hints.append(_xor_token_lens(cv))
        if s.pyramid is not None:
            s.pyramid.add_sealed(ct, cv, s.n_sealed_samples)
        s.n_sealed_samples += len(ct)
        s.sealed_bytes += len(blob)
        store._samples += len(ct)
        store._sealed_samples += len(ct)
        store._sealed_chunks += 1
        store._sealed_bytes += len(blob)
        scanned_chunks += 1

    # 3) dedup bookkeeping: a series' arrival stream was
    # [manifest-sealed | manifest-head | wal records]; sealed chunks
    # recovered above cover a prefix, so drop exactly that prefix from
    # the head and the WAL replay.
    wal_skip: dict[MetricKey, int] = {}
    for key, s in store._series.items():
        head_t, head_v = manifest_heads.get(key, ([], []))
        drop = s.n_sealed_samples - base_sealed.get(key, 0)
        if drop > 0:
            wal_skip[key] = max(0, drop - len(head_t))
            head_t, head_v = head_t[drop:], head_v[drop:]
        s.head_t, s.head_v = head_t, head_v
        store._samples += len(head_t)

    replayed = skipped = 0
    for payload in wal_payloads:
        metric, comps, times, values = _decode_wal_batch(payload)
        if not comps:
            continue
        if wal_skip:
            keep = np.ones(len(comps), dtype=bool)
            for i, c in enumerate(comps):
                key = MetricKey(metric, c)
                left = wal_skip.get(key, 0)
                if left:
                    keep[i] = False
                    wal_skip[key] = left - 1
                    if left == 1:
                        del wal_skip[key]
            skipped += int((~keep).sum())
            if not keep.all():
                comps = [c for c, k in zip(comps, keep.tolist()) if k]
                times, values = times[keep], values[keep]
            if not comps:
                continue
        replayed += len(comps)
        store.append(SeriesBatch(
            metric, np.asarray(comps, dtype=object), times, values,
        ))

    report = RecoveryReport(
        series=len(store._series),
        points=store._samples,
        manifest_chunks=manifest_chunks,
        scanned_chunks=scanned_chunks,
        wal_points_replayed=replayed,
        wal_points_skipped=skipped,
        torn_segment_bytes=torn_seg,
        torn_wal_bytes=torn_wal,
    )
    if snapshot_after:
        store.snapshot()
    return store, report


def recover_sharded(
    root: str | Path,
    shards: int,
    hot_bytes: int = 64 << 20,
    segment_bytes: int = 64 << 20,
    sync_every_bytes: int = 1 << 20,
    redo_points: int = 100_000,
    snapshot_after: bool = True,
):
    """Rebuild a :class:`ShardedTimeSeriesStore` from per-shard tiers.

    ``root`` must hold the ``shard-N`` subdirectories a disk-enabled
    sharded store writes; shard count and routing must match the
    original, or series land on the wrong shard.
    """
    from .sharded import ShardedTimeSeriesStore

    root = Path(root)
    sh = ShardedTimeSeriesStore(shards=shards, redo_points=redo_points)
    report = RecoveryReport(0, 0, 0, 0, 0, 0, 0, 0)
    rebuilt = []
    for i in range(shards):
        store, rep = recover_store(
            root / f"shard-{i}", hot_bytes=hot_bytes,
            segment_bytes=segment_bytes, sync_every_bytes=sync_every_bytes,
            cache=sh.cache, snapshot_after=snapshot_after,
        )
        rebuilt.append(store)
        report = report.merged(rep)
    sh.shards = rebuilt
    sh.disk_dir = str(root)
    sh.pyramid_levels = rebuilt[0].pyramid_levels
    return sh, report
