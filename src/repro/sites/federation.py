"""N heterogeneous sites stepping on one simulated clock.

The :class:`Federation` driver owns one
:class:`~repro.pipeline.MonitoringPipeline` per site (each built from
its :class:`~repro.sites.config.SiteConfig` by
:func:`~repro.sites.build.build_site`) and advances them in lockstep —
serially or fanned over the existing
:class:`~repro.runtime.executor.ThreadedExecutor`, which is safe
because sites share *no* state: every site has its own machine, clock
RNGs, transport, stores, supervisor, and ledger, and job identities are
per-machine.  That isolation is load-bearing and tested: a chaos
campaign on one site leaves every other site's ledger, health timeline,
and stored series bit-identical to a solo run.

Cross-site surfaces are merge *views* with ``site/...``-qualified
identities — the federated query front end
(:class:`~repro.serve.federated.FederatedFrontend`), the merged health
report and timeline, and the per-site delivery-ledger reports whose
``published == stored + lost + pending + in_flight`` identity the
``python -m repro sites`` scenario holds exactly per site.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Mapping

from ..runtime.executor import ExecutionModel, make_executor
from ..serve.federated import FederatedFrontend
from .build import build_site
from .config import SiteConfig

if TYPE_CHECKING:  # pragma: no cover
    from ..core.ledger import BalanceReport
    from ..pipeline import MonitoringPipeline

__all__ = ["Federation"]


class Federation:
    """Drive N per-site pipelines on one simulated clock."""

    def __init__(
        self,
        sites: "Iterable[SiteConfig] | Mapping[str, MonitoringPipeline]",
        executor: "ExecutionModel | int | str | None" = None,
    ) -> None:
        self.pipelines: "dict[str, MonitoringPipeline]" = {}
        if isinstance(sites, Mapping):
            for name, pipeline in sites.items():
                self._add(str(name), pipeline)
        else:
            for config in sites:
                if not isinstance(config, SiteConfig):
                    raise TypeError(
                        "pass SiteConfigs or a name->pipeline mapping; got "
                        f"{type(config).__name__}"
                    )
                if not config.name:
                    raise ValueError(
                        "federated sites need non-empty names"
                    )
                self._add(config.name, build_site(config))
        if not self.pipelines:
            raise ValueError("a federation needs at least one site")
        # how cross-site stepping fans out; per-site pipelines keep
        # their own (possibly parallel) executors for the planes inside
        self.executor = make_executor(executor)
        self._frontend: FederatedFrontend | None = None

    def _add(self, name: str, pipeline: "MonitoringPipeline") -> None:
        if not name or "/" in name or any(c.isspace() for c in name):
            raise ValueError(
                f"bad site name {name!r}: non-empty, no '/' or whitespace"
            )
        if name in self.pipelines:
            raise ValueError(f"duplicate site name {name!r}")
        self.pipelines[name] = pipeline

    @classmethod
    def from_presets(
        cls,
        names: Iterable[str] | None = None,
        executor: "ExecutionModel | int | str | None" = None,
    ) -> "Federation":
        """Stand up the paper's ten sites (or the named subset)."""
        from .presets import PAPER_SITES, paper_site

        configs = (
            [paper_site(n) for n in names] if names is not None
            else list(PAPER_SITES.values())
        )
        return cls(configs, executor=executor)

    # -- access -------------------------------------------------------------

    def names(self) -> list[str]:
        return list(self.pipelines)

    def site(self, name: str) -> "MonitoringPipeline":
        try:
            return self.pipelines[name]
        except KeyError:
            raise KeyError(
                f"unknown site {name!r}; federation has: "
                f"{', '.join(self.pipelines)}"
            ) from None

    @property
    def now(self) -> float:
        """The shared simulated time (all sites step in lockstep)."""
        return next(iter(self.pipelines.values())).machine.now

    # -- the one clock ------------------------------------------------------

    def step(self, dt: float | None = None) -> None:
        """Advance every site by the same ``dt`` seconds.

        ``None`` picks the finest site tick, so each site's own
        cadences (collectors, selfmon, stages) still fire on schedule
        while the clocks stay exactly equal across sites.  Sites are
        independent, so a parallel federation executor may overlap
        whole site ticks; results are deterministic either way.
        """
        if dt is None:
            dt = min(p.tick_s for p in self.pipelines.values())
        pipelines = list(self.pipelines.values())
        if self.executor.parallel and len(pipelines) > 1:
            self.executor.map_ordered(
                [lambda p=p: p.step(dt) for p in pipelines]
            )
        else:
            for p in pipelines:
                p.step(dt)

    def run(
        self,
        duration_s: float | None = None,
        hours: float | None = None,
        dt: float | None = None,
    ) -> None:
        if (duration_s is None) == (hours is None):
            raise ValueError("pass exactly one of duration_s or hours")
        total = duration_s if duration_s is not None else hours * 3600.0
        end = self.now + total
        while self.now < end - 1e-9:
            self.step(dt)

    def flush(self) -> None:
        """Drain every site's transport (pre-reconciliation settling)."""
        for p in self.pipelines.values():
            p.bus.flush()

    def shutdown(self) -> None:
        """Release the federation executor's workers (idempotent)."""
        self.executor.shutdown()

    # -- merged views -------------------------------------------------------

    def frontend(self) -> FederatedFrontend:
        """The federated query surface over every site's front end."""
        if self._frontend is None:
            self._frontend = FederatedFrontend(
                {name: p.frontend for name, p in self.pipelines.items()}
            )
        return self._frontend

    def delivery_reports(self) -> "dict[str, BalanceReport | None]":
        """Per-site ledger reconciliation (None for unsupervised sites)."""
        return {
            name: p.delivery_report()
            for name, p in self.pipelines.items()
        }

    def balanced(self) -> bool:
        """Every supervised site's delivery identity holds exactly."""
        return all(
            r is None or (r.balanced and r.unaccounted == 0)
            for r in self.delivery_reports().values()
        )

    def health_report(self) -> dict[str, dict]:
        """Merged supervision summary, ``site/component``-qualified."""
        out: dict[str, dict] = {}
        for name, p in self.pipelines.items():
            for comp, summary in p.health_report().items():
                out[f"{name}/{comp}"] = summary
        return out

    def timeline(self) -> str:
        """All sites' health transitions, merged in time order."""
        rows = []
        for name, p in self.pipelines.items():
            if p.supervisor is None:
                continue
            rows.extend(
                (tr.time, name, tr) for tr in p.supervisor.transitions
            )
        if not rows:
            return "(no health transitions)"
        rows.sort(key=lambda r: r[0])
        return "\n".join(
            f"t={t:8.0f}s  {name:>6}  {tr.describe()}"
            for t, name, tr in rows
        )
