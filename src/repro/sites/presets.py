"""Preset configs for the paper's ten sites.

One :class:`~repro.sites.config.SiteConfig` per authoring site of the
paper (Section II), shaped after the machine each site describes —
dragonflies for the XC systems, 3D tori for Blue Waters and Titan,
hybrid GPU blades where the site's stories are GPU stories — and
deliberately *heterogeneous* across the monitoring stack: different
transport tiers, shard counts, cadences, executors, and tenant quota
tables, so a federation over the presets exercises every plane at once.

Scales are kept small (tens of nodes per site) so ``python -m repro
sites`` can stand up all ten on one simulated clock and run a campaign
in seconds; the *shape* heterogeneity, not the node count, is what the
scenario stresses.
"""

from __future__ import annotations

from ..serve.quota import TenantQuota
from .config import SiteConfig

__all__ = ["PAPER_SITES", "paper_site", "paper_sites"]


def _sites() -> tuple[SiteConfig, ...]:
    return (
        # LANL / Trinity: big XC40 dragonfly, sharded store, fanned
        # collection — the largest preset.
        SiteConfig(
            name="lanl", system="Trinity",
            description="Cray XC40 dragonfly; sharded store, threaded "
                        "collection",
            topology="dragonfly", groups=3, chassis_per_group=3,
            blades_per_chassis=4, nodes_per_router=4,
            transport="partitioned", shards=4, workers=2,
            mean_interarrival_s=240.0, seed=11,
        ),
        # NCSA / Blue Waters: Gemini 3D torus, tree transport (the
        # LDMS-style aggregation NCSA actually ran).
        SiteConfig(
            name="ncsa", system="Blue Waters",
            description="Cray XE/XK 3D torus; LDMS-style aggregation tree",
            topology="torus", torus_dims=(4, 4, 3),
            transport="tree", shards=2,
            mean_interarrival_s=300.0, seed=12,
        ),
        # NERSC / Cori: XC40 dragonfly, partitioned bus, dense cadence.
        SiteConfig(
            name="nersc", system="Cori",
            description="Cray XC40 dragonfly; partitioned bus, 30 s cadence",
            topology="dragonfly", groups=2, chassis_per_group=3,
            blades_per_chassis=4, nodes_per_router=4,
            transport="partitioned", shards=3,
            metric_interval_s=30.0, probe_interval_s=30.0,
            mean_interarrival_s=240.0, seed=13,
        ),
        # CSC / Sisu: the smallest XC40; flat bus, single store.
        SiteConfig(
            name="csc", system="Sisu",
            description="Cray XC40 dragonfly; flat bus, single store",
            topology="dragonfly", groups=1, chassis_per_group=3,
            blades_per_chassis=4, nodes_per_router=4,
            transport="flat",
            mean_interarrival_s=420.0, seed=14,
        ),
        # CSCS / Piz Daint: XC50 hybrid blades — every node has a GPU.
        SiteConfig(
            name="cscs", system="Piz Daint",
            description="Cray XC50 dragonfly; GPU on every node",
            topology="dragonfly", groups=2, chassis_per_group=3,
            blades_per_chassis=3, nodes_per_router=4,
            gpu_nodes="all", transport="partitioned", shards=2,
            mean_interarrival_s=300.0, seed=15,
        ),
        # ORNL / Titan: XK7 3D torus with GPUs, tree transport.
        SiteConfig(
            name="ornl", system="Titan",
            description="Cray XK7 3D torus; GPUs, aggregation tree",
            topology="torus", torus_dims=(4, 3, 3),
            gpu_nodes="all", transport="tree", shards=2,
            mean_interarrival_s=240.0, seed=16,
        ),
        # KAUST / Shaheen II: XC40; power-signature stories, slow bench
        # cadence, per-tenant serving quotas for the user dashboards.
        SiteConfig(
            name="kaust", system="Shaheen II",
            description="Cray XC40 dragonfly; quota-gated user dashboards",
            topology="dragonfly", groups=2, chassis_per_group=3,
            blades_per_chassis=4, nodes_per_router=2,
            transport="flat", bench_interval_s=1200.0,
            quotas={"users": TenantQuota(qps=50.0),
                    "ops": TenantQuota()},
            mean_interarrival_s=360.0, seed=17,
        ),
        # ALCF / Theta: XC40, coarse cadence (trend analysis site).
        SiteConfig(
            name="alcf", system="Theta",
            description="Cray XC40 dragonfly; coarse 120 s cadence",
            topology="dragonfly", groups=2, chassis_per_group=3,
            blades_per_chassis=3, nodes_per_router=4,
            transport="partitioned",
            metric_interval_s=120.0, probe_interval_s=120.0,
            mean_interarrival_s=300.0, seed=18,
        ),
        # SNL / Mutrino: the small XC40 power-sweep testbed.
        SiteConfig(
            name="snl", system="Mutrino",
            description="Cray XC40 testbed; tight tick for power sweeps",
            topology="dragonfly", groups=1, chassis_per_group=3,
            blades_per_chassis=4, nodes_per_router=2,
            transport="flat", tick_s=5.0,
            metric_interval_s=30.0,
            mean_interarrival_s=420.0, seed=19,
        ),
        # HLRS / Hazel Hen: XC40; runtime-variability stories, busy
        # arrivals so aggressor/victim mixes actually happen.
        SiteConfig(
            name="hlrs", system="Hazel Hen",
            description="Cray XC40 dragonfly; busy mixed workload",
            topology="dragonfly", groups=2, chassis_per_group=3,
            blades_per_chassis=4, nodes_per_router=3,
            transport="tree", shards=2,
            mean_interarrival_s=180.0, seed=20,
        ),
    )


#: the ten paper sites, keyed by site name, in the paper's order
PAPER_SITES: dict[str, SiteConfig] = {c.name: c for c in _sites()}


def paper_sites() -> list[SiteConfig]:
    """All ten presets, in the paper's site order."""
    return list(PAPER_SITES.values())


def paper_site(name: str) -> SiteConfig:
    """One preset by site name (``"lanl"`` ... ``"hlrs"``)."""
    try:
        return PAPER_SITES[name]
    except KeyError:
        raise KeyError(
            f"unknown site {name!r}; presets: {', '.join(PAPER_SITES)}"
        ) from None
