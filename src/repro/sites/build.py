"""Build a site's machine + monitoring stack from its declared config.

``build_site(config) -> MonitoringPipeline`` is the one assembly path:
``default_pipeline`` is now a thin shim over a one-site config, and the
federation driver calls this per site.  ``site_capabilities(pipeline)``
derives the *live* Table I row from the assembled stack — the dict
:meth:`~repro.sites.config.SiteConfig.capabilities` declares — so
declared-vs-built drift is machine-checkable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..cluster.machine import Machine
from ..cluster.scheduler import PackedPlacement
from ..cluster.topology import build_dragonfly, build_torus
from ..cluster.workload import JobGenerator
from ..sources.health import HealthGate
from .config import SiteConfig

if TYPE_CHECKING:  # pragma: no cover
    from ..pipeline import MonitoringPipeline

__all__ = ["build_machine", "build_site", "site_capabilities"]


def build_machine(config: SiteConfig) -> Machine:
    """The simulated platform a :class:`SiteConfig` declares."""
    if config.topology == "dragonfly":
        topo = build_dragonfly(
            groups=config.groups,
            chassis_per_group=config.chassis_per_group,
            blades_per_chassis=config.blades_per_chassis,
            nodes_per_router=config.nodes_per_router,
        )
    else:
        nx_dim, ny_dim, nz_dim = config.torus_dims
        topo = build_torus(nx_dim, ny_dim, nz_dim)
    return Machine(
        topo,
        placement=PackedPlacement(),
        job_generator=JobGenerator(
            mean_interarrival_s=config.mean_interarrival_s,
            max_nodes=config.max_job_nodes,
            seed=config.seed,
        ),
        gpu_nodes=config.gpu_nodes,
        seed=config.seed,
    )


def _build_store(config: SiteConfig):
    """The numeric-store tier the config declares (None = pipeline default)."""
    from ..storage.sharded import ShardedTimeSeriesStore
    from ..storage.tsdb import TimeSeriesStore

    if config.shards is not None:
        return ShardedTimeSeriesStore(
            shards=config.shards,
            chunk_size=config.chunk_size,
            pyramid_levels=config.pyramid_levels,
            disk_dir=config.store_dir,
            hot_bytes=config.hot_bytes,
        )
    if config.store_dir is not None:
        from ..storage.diskier import DiskTier
        return TimeSeriesStore(
            chunk_size=config.chunk_size,
            pyramid_levels=config.pyramid_levels,
            disk=DiskTier(config.store_dir, hot_bytes=config.hot_bytes),
        )
    return TimeSeriesStore(
        chunk_size=config.chunk_size,
        pyramid_levels=config.pyramid_levels,
    )


def build_site(
    config: SiteConfig,
    machine: Machine | None = None,
    overrides: dict | None = None,
) -> "MonitoringPipeline":
    """Assemble the full monitoring stack the config declares.

    ``overrides`` carries instance-typed knobs that cannot be expressed
    as data (the dict :meth:`SiteConfig.from_knobs` returns — a live
    ``Transport``/store/``ExecutionModel``, plus any pipeline-only
    plumbing like ``sec=``/``registry=``/``stages=``); they install
    verbatim over the config's declarative choices.
    """
    from ..pipeline import MonitoringPipeline, default_collectors
    from ..transport.base import make_transport

    overrides = dict(overrides) if overrides else {}
    if machine is None:
        machine = build_machine(config)
    transport = overrides.pop("transport", None)
    if transport is None:
        transport = make_transport(config.transport)
    tsdb = overrides.pop("tsdb", None)
    if tsdb is None:
        tsdb = _build_store(config)
    executor = overrides.pop("executor", config.workers)
    collectors = overrides.pop("collectors", None)
    if collectors is None:
        collectors = default_collectors(
            machine,
            metric_interval_s=config.metric_interval_s,
            probe_interval_s=config.probe_interval_s,
            bench_interval_s=config.bench_interval_s,
            health_interval_s=config.health_interval_s,
            seed=config.seed,
        )
    pipeline = MonitoringPipeline(
        machine,
        collectors=collectors,
        transport=transport,
        tsdb=tsdb,
        tick_s=config.tick_s,
        renotify_s=config.renotify_s,
        selfmon_interval_s=config.selfmon_interval_s,
        supervision=config.supervision,
        collector_budget_s=config.collector_budget_s,
        freshness=config.freshness,
        executor=executor,
        serve_quotas=config.quotas,
        site=config.name,
        **overrides,
    )
    pipeline.site_config = config
    if config.with_health_gate and machine.scheduler.health_gate is None:
        gate = HealthGate(machine)
        machine.scheduler.health_gate = gate.gate
        pipeline.health_gate = gate
    return pipeline


# transport classes -> declared tier names (the capability-row vocabulary)
_TRANSPORT_TIER_OF = {
    "MessageBus": "flat",
    "PartitionedBus": "partitioned",
    "AggregatorTree": "tree",
}


def site_capabilities(pipeline: "MonitoringPipeline") -> dict:
    """The *live* Table I capability row of an assembled stack.

    Reads only what the running pipeline exposes (topology, transport
    and store types, executor width, quota table) so any drift between
    a :class:`SiteConfig` and what actually got built shows up as a
    dict inequality against :meth:`SiteConfig.capabilities`.
    """
    machine = pipeline.machine
    config = getattr(pipeline, "site_config", None)
    topo_name = type(machine.topo).__name__.replace("Topology", "").lower()
    bus = pipeline.bus
    inner = getattr(bus, "inner", None)   # chaos wrapper is transparent
    tier = _TRANSPORT_TIER_OF.get(
        type(inner if inner is not None else bus).__name__,
        type(bus).__name__,
    )
    tsdb = pipeline.tsdb
    levels = getattr(tsdb, "pyramid_levels", None) or ()
    disk = getattr(tsdb, "disk", None)
    if disk is None:
        # sharded store: per-shard tiers under a common root
        shards0 = getattr(tsdb, "shards", None)
        if shards0:
            disk = getattr(shards0[0], "disk", None)
    return {
        "site": getattr(pipeline, "site", ""),
        "system": config.system if config is not None else "",
        "topology": topo_name,
        "nodes": len(machine.topo.nodes),
        "gpus": machine.gpus.n if machine.gpus is not None else 0,
        "transport": tier,
        "shards": int(getattr(tsdb, "n_shards", 1)),
        "levels": len(levels),
        "disk": disk is not None,
        "workers": int(getattr(pipeline.executor, "workers", 1)),
        "cadence_s": float(pipeline.scheduler.collectors[0].interval_s)
        if pipeline.scheduler.collectors else 0.0,
        "supervised": pipeline.supervisor is not None,
        "freshness": pipeline.freshness is not None,
        "tenants": len(getattr(pipeline.frontend.governor, "_quotas", {})),
    }
