"""Multi-site layer: declarative site configs, builders, federation.

The paper is ten sites running different machines, transports, and
storage stacks; this package makes a whole deployment *data*
(:class:`~repro.sites.config.SiteConfig`), builds it
(:func:`~repro.sites.build.build_site`), ships presets for the ten
authoring sites (:data:`~repro.sites.presets.PAPER_SITES`), and steps
N of them on one simulated clock with a federated query/capability
view (:class:`~repro.sites.federation.Federation`).
"""

from .build import build_machine, build_site, site_capabilities
from .config import SITE_FIELD_NAMES, SiteConfig
from .federation import Federation
from .presets import PAPER_SITES, paper_site, paper_sites

__all__ = [
    "Federation",
    "PAPER_SITES",
    "SITE_FIELD_NAMES",
    "SiteConfig",
    "build_machine",
    "build_site",
    "paper_site",
    "paper_sites",
    "site_capabilities",
]
