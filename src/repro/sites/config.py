"""Declarative site configuration: a whole deployment as data.

The paper is ten sites running different machines, transports, and
storage stacks (Table I); DCDB makes the same case for a per-facility
config layer feeding a holistic cross-facility view, and the
radical.pilot platform-config table is the concrete shape imitated
here.  A :class:`SiteConfig` captures everything
``default_pipeline`` used to take as loose kwargs — machine shape,
workload, collector cadences, transport tier, storage layout, execution
model, serving quotas — as one validated, frozen value that can be
diffed between sites and rebuilt into an identical stack
(:func:`repro.sites.build.build_site`).

:meth:`SiteConfig.from_knobs` is the *single* validated path for the
historically mutually-exclusive assembly knobs (``tsdb=`` vs
``shards=`` vs ``store_dir=``, ``workers=`` vs ``executor=``);
``default_pipeline`` now routes through it instead of an ad-hoc
``raise ValueError`` ladder.  :meth:`SiteConfig.capabilities` is the
declared per-site Table I row that live-pipeline introspection must
reproduce exactly (the config-drift contract the CLI and tests check).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any

from ..serve.quota import TenantQuota
from ..storage.rollup import DEFAULT_LEVELS

__all__ = [
    "SITE_FIELD_NAMES",
    "SiteConfig",
    "TOPOLOGY_CLASSES",
    "TRANSPORT_TIERS",
]

#: machine shapes a site can declare (the paper's Cray fleet is
#: dragonflies and 3D tori)
TOPOLOGY_CLASSES = ("dragonfly", "torus")

#: data-movement tiers resolvable by :func:`repro.transport.base.make_transport`
TRANSPORT_TIERS = ("flat", "bus", "partitioned", "tree")

#: nodes hanging off one torus router (matches TorusTopology)
_TORUS_NODES_PER_ROUTER = 2


@dataclass(frozen=True)
class SiteConfig:
    """One site's complete monitoring deployment, as plain data."""

    # -- identity ---------------------------------------------------------
    name: str = ""            # empty = anonymous single-site deployment
    system: str = ""
    description: str = ""

    # -- machine shape ----------------------------------------------------
    topology: str = "dragonfly"          # one of TOPOLOGY_CLASSES
    groups: int = 2                      # dragonfly shape
    chassis_per_group: int = 3
    blades_per_chassis: int = 4
    nodes_per_router: int = 4
    torus_dims: tuple[int, int, int] = (4, 4, 4)
    gpu_nodes: Any = None                # None | "all" | sequence of cnames

    # -- workload ---------------------------------------------------------
    mean_interarrival_s: float = 300.0
    max_job_nodes: int | None = 32
    seed: int = 0

    # -- collector cadences -----------------------------------------------
    metric_interval_s: float = 60.0
    probe_interval_s: float = 60.0
    bench_interval_s: float = 600.0
    health_interval_s: float = 600.0
    with_health_gate: bool = True

    # -- pipeline loop ----------------------------------------------------
    tick_s: float = 10.0
    renotify_s: float = 3600.0
    selfmon_interval_s: float | None = 60.0
    collector_budget_s: float | None = None
    supervision: bool = True
    freshness: bool = True

    # -- transport tier ---------------------------------------------------
    transport: str = "flat"              # one of TRANSPORT_TIERS

    # -- storage tier -----------------------------------------------------
    shards: int | None = None            # None = single store
    pyramid_levels: tuple[float, ...] = DEFAULT_LEVELS
    store_dir: str | None = None         # out-of-core disk tier root
    hot_bytes: int = 64 << 20
    chunk_size: int = 512

    # -- execution model --------------------------------------------------
    workers: int | None = None           # None/1 = serial

    # -- serving plane ----------------------------------------------------
    quotas: "dict[str, TenantQuota] | None" = None

    def __post_init__(self) -> None:
        if self.name and ("/" in self.name
                          or any(c.isspace() for c in self.name)):
            # "site/component" is the federation's qualified-name syntax
            raise ValueError(
                f"site name {self.name!r} may not contain '/' or whitespace"
            )
        if self.topology not in TOPOLOGY_CLASSES:
            raise ValueError(
                f"unknown topology {self.topology!r}; "
                f"expected one of {TOPOLOGY_CLASSES}"
            )
        if self.topology == "dragonfly":
            shape = (self.groups, self.chassis_per_group,
                     self.blades_per_chassis, self.nodes_per_router)
            if any(int(x) < 1 for x in shape):
                raise ValueError("dragonfly shape counts must be >= 1")
            if self.chassis_per_group % 3 != 0:
                raise ValueError(
                    "chassis_per_group must be a multiple of 3 "
                    "(intra-group all-to-all wiring)"
                )
        else:
            if len(self.torus_dims) != 3 or any(
                int(d) < 1 for d in self.torus_dims
            ):
                raise ValueError("torus_dims must be three counts >= 1")
        if self.gpu_nodes is not None and self.gpu_nodes != "all":
            try:
                named = all(isinstance(n, str) for n in self.gpu_nodes)
            except TypeError:
                named = False
            if isinstance(self.gpu_nodes, str) or not named:
                raise ValueError(
                    "gpu_nodes must be None, 'all', or a sequence of "
                    "node names"
                )
        if self.transport not in TRANSPORT_TIERS:
            raise ValueError(
                f"unknown transport {self.transport!r}; "
                f"expected one of {TRANSPORT_TIERS}"
            )
        if self.shards is not None and int(self.shards) < 1:
            raise ValueError("shards must be >= 1")
        if not self.pyramid_levels or any(
            float(x) <= 0 for x in self.pyramid_levels
        ):
            raise ValueError("pyramid_levels must be positive")
        if self.chunk_size < 2:
            raise ValueError("chunk_size must be >= 2")
        if self.workers is not None and int(self.workers) < 1:
            raise ValueError("workers must be >= 1")
        for knob in ("mean_interarrival_s", "metric_interval_s",
                     "probe_interval_s", "bench_interval_s",
                     "health_interval_s", "tick_s", "renotify_s"):
            if float(getattr(self, knob)) <= 0:
                raise ValueError(f"{knob} must be positive")
        if self.selfmon_interval_s is not None and self.selfmon_interval_s <= 0:
            raise ValueError("selfmon_interval_s must be positive")

    # -- the single validated knob path -----------------------------------

    @classmethod
    def from_knobs(
        cls,
        *,
        transport=None,
        tsdb=None,
        shards: int | None = None,
        store_dir: str | None = None,
        workers: int | None = None,
        executor=None,
        **declarative,
    ) -> "tuple[SiteConfig, dict]":
        """Validate the historic ``default_pipeline`` knob set.

        Declarative knobs land in the returned :class:`SiteConfig`;
        instance-typed knobs (a ``Transport``/store/``ExecutionModel``
        object that cannot be expressed as data) come back in the
        overrides dict for :func:`~repro.sites.build.build_site` to
        install verbatim.  The mutual-exclusion rules live here — one
        code path, not a ladder at every call site.
        """
        overrides: dict = {}
        if tsdb is not None:
            if store_dir is not None:
                raise ValueError("pass either tsdb= or store_dir=, not both")
            if shards is not None:
                raise ValueError("pass either tsdb= or shards=, not both")
            overrides["tsdb"] = tsdb
        if workers is not None and executor is not None:
            raise ValueError("pass either workers= or executor=, not both")
        if transport is not None:
            if isinstance(transport, str):
                declarative["transport"] = transport
            else:
                overrides["transport"] = transport
        if executor is not None:
            if isinstance(executor, int) and not isinstance(executor, bool):
                workers = executor
            else:
                overrides["executor"] = executor
        config = cls(
            shards=shards,
            store_dir=store_dir,
            workers=workers,
            **declarative,
        )
        return config, overrides

    # -- derived shape ----------------------------------------------------

    def expected_nodes(self) -> int:
        """Node count the declared shape builds to."""
        if self.topology == "dragonfly":
            return (self.groups * self.chassis_per_group
                    * self.blades_per_chassis * self.nodes_per_router)
        nx_dim, ny_dim, nz_dim = self.torus_dims
        return nx_dim * ny_dim * nz_dim * _TORUS_NODES_PER_ROUTER

    def expected_gpus(self) -> int:
        if self.gpu_nodes is None:
            return 0
        if self.gpu_nodes == "all":
            return self.expected_nodes()
        return len(self.gpu_nodes)

    # -- the declared Table I row -----------------------------------------

    def capabilities(self) -> dict:
        """The site's declared capability row (Table I, per site).

        Live introspection (:func:`repro.sites.build.site_capabilities`)
        must reproduce this dict exactly — that equality is the
        config-drift contract ``python -m repro sites`` enforces.
        """
        return {
            "site": self.name,
            "system": self.system,
            "topology": self.topology,
            "nodes": self.expected_nodes(),
            "gpus": self.expected_gpus(),
            "transport": "flat" if self.transport == "bus" else self.transport,
            "shards": int(self.shards) if self.shards is not None else 1,
            "levels": len(self.pyramid_levels),
            "disk": self.store_dir is not None,
            "workers": int(self.workers) if self.workers is not None else 1,
            "cadence_s": float(self.metric_interval_s),
            "supervised": bool(self.supervision),
            "freshness": bool(self.freshness),
            "tenants": len(self.quotas) if self.quotas else 0,
        }

    def to_dict(self) -> dict:
        """Plain-data view (quota values expanded), for diffing sites."""
        out: dict = {}
        for f in fields(self):
            v = getattr(self, f.name)
            if f.name == "quotas" and v:
                v = {t: (q.qps, q.burst, q.max_concurrent)
                     for t, q in v.items()}
            out[f.name] = v
        return out


#: every declarative knob a site deployment has (the config-drift gate
#: in scripts/check.py holds pipeline assembly parameters to this set)
SITE_FIELD_NAMES: frozenset[str] = frozenset(
    f.name for f in fields(SiteConfig)
)
