"""Pipeline stages: the tick loop's work units as swappable objects.

``MonitoringPipeline.step()`` used to inline every stage of the data
path; each is now a :class:`Stage` — a named object whose ``run``
advances one plane of the monitoring system for one tick and returns
any :class:`~repro.response.sec.ActionRequest`\\ s it raised.  The tick
loop reduces to "iterate stages under trace spans", so stages are
individually testable, reorderable, and replaceable (Table I:
"Extensibility and modularity are fundamental").  Stage names match
the per-tick child spans the introspector reports
(:data:`repro.obs.introspect.STAGES`).

Stages that publish onto the transport end by :meth:`~repro.transport.base.Transport.pump`\\ ing
it, so deferred transports (partitioned bus, aggregator tree) deliver
what is due before downstream stages read the stores.  This module
must never import :mod:`repro.pipeline` at runtime — the import-cycle
gate in ``scripts/check.py`` enforces that the extraction stays acyclic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, Sequence, runtime_checkable

from .core.events import Event, EventKind, Severity
from .core.lifecycle import Health
from .response.policy import detections_to_requests
from .response.sec import ActionRequest

if TYPE_CHECKING:  # pragma: no cover
    from .pipeline import AnalysisHook, MonitoringPipeline

__all__ = [
    "Stage",
    "EventPlaneStage",
    "MetricPlaneStage",
    "JobTrackingStage",
    "StreamingStage",
    "AnalysisHooksStage",
    "SupervisionStage",
    "FreshnessStage",
    "ResponseStage",
    "SelfMonStage",
    "default_stages",
    "schedule_stages",
]


@runtime_checkable
class Stage(Protocol):
    """One plane of the monitoring system, advanced once per tick.

    Stages additionally carry two declarative class attributes the
    scheduler reads (both optional — absent attributes default to a
    plane named after the stage with no dependencies):

    ``plane``
        which data plane the stage belongs to; stages on the same
        plane share a worker affinity under parallel executors.

    ``after``
        names of stages whose data this stage consumes.  The tick
        order is *derived* from these edges by :func:`schedule_stages`
        (declaration order breaks ties), not hand-maintained.
    """

    name: str

    def run(
        self, pipeline: "MonitoringPipeline", now: float
    ) -> Sequence[ActionRequest]:
        """Advance this stage; returned requests flow to the response
        stage at the end of the same tick."""
        ...


def schedule_stages(stages: Sequence[Stage]) -> list[Stage]:
    """Topologically order ``stages`` by their declared ``after`` edges.

    Kahn's algorithm with declaration order as the tie-break, so a
    dependency-complete stage set (like :func:`default_stages`)
    schedules into exactly the order operators are used to reading in
    the tick trace.  Edges naming stages that are not installed are
    ignored — removing a plane must not wedge the ones that remain.
    A dependency cycle is a configuration error and raises
    ``ValueError`` naming the stages involved.
    """
    names = [s.name for s in stages]
    present = set(names)
    if len(present) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise ValueError(f"duplicate stage names: {dupes}")
    deps = {
        s.name: [d for d in getattr(s, "after", ()) if d in present]
        for s in stages
    }
    ordered: list[Stage] = []
    placed: set[str] = set()
    remaining = list(stages)
    while remaining:
        for i, s in enumerate(remaining):
            if all(d in placed for d in deps[s.name]):
                ordered.append(s)
                placed.add(s.name)
                del remaining[i]
                break
        else:
            stuck = sorted(s.name for s in remaining)
            raise ValueError(f"stage dependency cycle among: {stuck}")
    return ordered


class EventPlaneStage:
    """Machine events -> router -> decoded -> log store + SEC."""

    name = "event-plane"
    plane = "events"
    after: tuple[str, ...] = ()

    def run(self, pipeline, now):
        pipeline.router.pump(pipeline.machine)
        fresh = pipeline.tap.drain()
        for ev in fresh:
            pipeline.bus.publish(f"events.{ev.kind.value}", ev, source="erd")
        pipeline.bus.pump(now)
        requests = pipeline.sec.feed(fresh)
        requests += pipeline.sec.tick(now)
        return requests


class MetricPlaneStage:
    """Due collectors sweep the machine; their events also feed the SEC
    rules — "triggered based on arbitrary locations in the data and
    analysis pathways" (Table I)."""

    name = "metric-plane"
    plane = "metrics"
    after = ("event-plane",)

    def run(self, pipeline, now):
        ex = getattr(pipeline, "executor", None)
        if ex is not None and ex.parallel:
            collected = pipeline.parallel_sweep(now, ex)
        else:
            collected = pipeline.scheduler.poll(
                pipeline.machine, now, tick=pipeline.ticks
            )
            pipeline.bus.pump(now)
        if collected.events:
            return pipeline.sec.feed(collected.events)
        return ()


class JobTrackingStage:
    """Job tenancy: start/end records into the job index + SQL store."""

    name = "job-tracking"
    plane = "jobs"
    after: tuple[str, ...] = ()

    def __init__(self) -> None:
        self._tracked: set[int] = set()
        self._done: set[int] = set()

    def run(self, pipeline, now):
        sched = pipeline.machine.scheduler
        for job in sched.running:
            if job.id not in self._tracked and job.start_time is not None:
                pipeline.jobs.record_start(
                    job.id, job.app.name, job.nodes, job.start_time,
                    user=job.user,
                )
                pipeline.sql.upsert_job(
                    job.id, job.app.name, job.n_nodes, job.submit_time,
                    "running", start_time=job.start_time, nodes=job.nodes,
                )
                self._tracked.add(job.id)
        for job in sched.completed:
            if job.id in self._done:
                continue
            if job.id not in self._tracked and job.start_time is not None:
                pipeline.jobs.record_start(
                    job.id, job.app.name, job.nodes, job.start_time,
                    user=job.user,
                )
                self._tracked.add(job.id)
            if job.id in self._tracked and job.end_time is not None:
                pipeline.jobs.record_end(job.id, job.end_time)
                pipeline.sql.upsert_job(
                    job.id, job.app.name, job.n_nodes, job.submit_time,
                    job.state.value, start_time=job.start_time,
                    end_time=job.end_time, nodes=job.nodes,
                )
                self._done.add(job.id)
                # CSCS post-job check: when a health gate is installed,
                # every finished job's nodes are re-validated and
                # failures drained before anything else lands on them
                gate = getattr(pipeline, "health_gate", None)
                if gate is not None:
                    gate.post_job(job)
        return ()


class StreamingStage:
    """Streaming detectors saw the sweeps at ingest; drain them now.

    Detectors self-report (batches/samples consumed, detections,
    sweep-latency histogram — see ``_BusAttached``); the selfmon plane
    reads those counters off this stage's ``detectors`` list to emit
    the ``selfmon.analysis.*`` gauges.
    """

    name = "streaming"
    plane = "analysis"
    after = ("metric-plane",)

    def __init__(self) -> None:
        self.detectors: list = []

    def detector(self, name: str):
        """Look up an installed detector by its (uniquified) name."""
        for det in self.detectors:
            if getattr(det, "name", None) == name:
                return det
        raise KeyError(
            f"no streaming detector named {name!r}; installed: "
            f"{[getattr(d, 'name', type(d).__name__) for d in self.detectors]}"
        )

    def run(self, pipeline, now):
        requests: list[ActionRequest] = []
        for det in self.detectors:
            drain = getattr(det, "drain", None)
            if drain is not None:
                found = drain()
                if found:
                    requests += detections_to_requests(
                        list(found), rule_prefix="stream"
                    )
        return requests


class AnalysisHooksStage:
    """User-supplied analyses on their cadence over the live stores.

    Rescheduling is phase-locked: a hook due at ``next_due`` that fires
    on a late tick reschedules from the *due time* (``next_due +
    k*interval``, skipping missed slots), not from ``now`` — so long-run
    figure scripts keep their cadence phase no matter how late the
    ticks land.
    """

    name = "analysis-hooks"
    plane = "analysis"
    after = ("metric-plane", "job-tracking")

    def __init__(self) -> None:
        self.hooks: list[tuple[float, float, "AnalysisHook"]] = []

    def add(self, interval_s: float, hook: "AnalysisHook") -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.hooks.append((float(interval_s), 0.0, hook))

    def run(self, pipeline, now):
        requests: list[ActionRequest] = []
        for i, (interval, next_due, hook) in enumerate(self.hooks):
            if now + 1e-9 < next_due:
                continue
            detections = hook(pipeline, now)
            if detections:
                requests += detections_to_requests(list(detections))
            # reschedule strictly forward from the DUE time, skipping
            # missed slots — never from `now`, which would drift phase
            while next_due <= now + 1e-9:
                next_due += interval
            self.hooks[i] = (interval, next_due, hook)
        return requests


class SupervisionStage:
    """The monitoring system watching its own planes.

    Each tick it (1) derives transport and store health from their own
    stats surfaces — new drops or delivery errors since the last tick
    degrade the component, with heal hysteresis in the supervisor —
    and (2) turns every fresh health transition (including those the
    scheduler and stage guards recorded earlier in the tick) into an
    :class:`~repro.core.events.Event` on the bus and into the SEC, so
    monitor self-degradation escalates exactly like machine trouble
    (Table I: the monitoring system must not fail silently).
    """

    name = "supervision"
    plane = "control"
    after = ("event-plane", "metric-plane")

    def __init__(self) -> None:
        self._last_drops = 0
        self._last_errors = 0
        self._seen_transitions = 0

    def run(self, pipeline, now):
        sup = pipeline.supervisor
        if sup is None:
            return ()

        # transport health from its own delivery accounting
        stats = pipeline.bus.stats()
        drops, errors = stats.dropped, stats.errors
        if drops > self._last_drops or errors > self._last_errors:
            sup.observe(
                "transport", Health.DEGRADED, now,
                reason=(f"+{drops - self._last_drops} drops, "
                        f"+{errors - self._last_errors} errors"),
            )
        else:
            sup.observe("transport", Health.OK, now)
        self._last_drops, self._last_errors = drops, errors

        # store health: per-shard when the store is sharded
        shard_health = getattr(pipeline.tsdb, "shard_health", None)
        if shard_health is not None:
            states = shard_health()
            for i, h in enumerate(states):
                sup.observe(f"store:shard-{i}", h, now,
                            reason="shard outage" if h is not Health.OK
                            else "")
            if any(h is not Health.OK for h in states):
                sup.observe("store", Health.DEGRADED, now,
                            reason="shard outage")
            else:
                sup.observe("store", Health.OK, now)
        else:
            sup.observe("store", Health.OK, now)

        # every fresh transition -> HEALTH event on the bus + SEC feed
        fresh = sup.transitions[self._seen_transitions:]
        self._seen_transitions = len(sup.transitions)
        if not fresh:
            return ()
        events = []
        for tr in fresh:
            worse = tr.new.code > tr.old.code
            events.append(Event(
                time=now,
                kind=EventKind.HEALTH,
                severity=Severity.ERROR if worse else Severity.NOTICE,
                component=f"monitor:{tr.component}",
                message=tr.describe(),
            ))
        for ev in events:
            pipeline.bus.publish(f"events.{ev.kind.value}", ev,
                                 source="supervision")
        pipeline.bus.pump(now)
        return pipeline.sec.feed(events)


class FreshnessStage:
    """Freshness SLO burn evaluation -> breach events -> SEC.

    The :class:`~repro.obs.freshness.FreshnessTracker` folded every
    traced batch at ingest; this stage asks it for newly fired breaches
    and publishes each as a HEALTH event whose message carries the
    worst exemplar (hop vector + offending hop), so the SEC escalation
    names exactly where the latency lives.  Runs after supervision
    (breaches often co-occur with component degradation) and before the
    response stage, so a breach alerts in the same tick it fires.
    """

    name = "freshness"
    plane = "control"
    after = ("metric-plane", "supervision")

    def run(self, pipeline, now):
        fr = pipeline.freshness
        if fr is None:
            return ()
        breaches = fr.evaluate(now)
        if not breaches:
            return ()
        events = []
        for b in breaches:
            events.append(Event(
                time=now,
                kind=EventKind.HEALTH,
                severity=Severity.ERROR,
                component=f"monitor:freshness:{b.slo.name}",
                message=b.describe(),
                fields=b.fields(),
            ))
        for ev in events:
            pipeline.bus.publish(f"events.{ev.kind.value}", ev,
                                 source="freshness")
        pipeline.bus.pump(now)
        return pipeline.sec.feed(events)


class ResponseStage:
    """Execute every request the earlier stages raised this tick."""

    name = "response"
    plane = "control"
    after = ("event-plane", "metric-plane", "streaming",
             "analysis-hooks", "supervision", "freshness")

    def run(self, pipeline, now):
        requests = pipeline.take_pending()
        if requests:
            pipeline.actions.execute(requests)
        return ()


class SelfMonStage:
    """The stack's own vitals, on their cadence, into the same bus."""

    name = "selfmon"
    plane = "control"
    after = ("response",)

    def run(self, pipeline, now):
        if pipeline.selfmon is not None:
            pipeline.selfmon.maybe_emit(now)
            pipeline.bus.pump(now)
        return ()


def default_stages() -> list[Stage]:
    """The full data path in Table I order."""
    return [
        EventPlaneStage(),
        MetricPlaneStage(),
        JobTrackingStage(),
        StreamingStage(),
        AnalysisHooksStage(),
        SupervisionStage(),
        FreshnessStage(),
        ResponseStage(),
        SelfMonStage(),
    ]
