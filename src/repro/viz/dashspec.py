"""Shareable dashboard configurations.

Section III-B: Grafana is popular for "its ease of configuration,
ability to graph live data, and ability to copy and share dashboard
configurations."  :class:`DashboardSpec` is that shareable artifact: a
declarative, JSON-round-trippable description of panels (which metric,
which aggregation, which thresholds) that renders against any
:class:`~repro.storage.tsdb.TimeSeriesStore` — so the dashboard a site
built for its machine really is a file another site can import.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

import numpy as np

from ..core.metric import SeriesBatch
from ..storage.tsdb import TimeSeriesStore
from .render import ascii_chart, bar_row, sparkline

__all__ = ["PanelSpec", "DashboardSpec"]

_PANEL_KINDS = ("timeseries", "stat", "percent_in_state")
_AGGS = ("mean", "sum", "min", "max", "last", "count")


@dataclass(frozen=True, slots=True)
class PanelSpec:
    """One dashboard panel, declaratively.

    ``kind``:
      * ``timeseries`` — chart of the metric (aggregated across
        components with ``agg`` per time bucket);
      * ``stat`` — single current value (latest bucket) with a bar and
        trend sparkline;
      * ``percent_in_state`` — share of components whose latest value
        breaches ``threshold`` (in the direction of ``above``).
    """

    title: str
    metric: str
    kind: str = "timeseries"
    agg: str = "mean"
    window_s: float = 3600.0
    step_s: float = 60.0
    threshold: float | None = None
    above: bool = True
    unit: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _PANEL_KINDS:
            raise ValueError(
                f"unknown panel kind {self.kind!r}; choose from "
                f"{_PANEL_KINDS}"
            )
        if self.agg not in _AGGS:
            raise ValueError(f"unknown agg {self.agg!r}")
        if self.kind == "percent_in_state" and self.threshold is None:
            raise ValueError("percent_in_state panels need a threshold")


@dataclass(slots=True)
class DashboardSpec:
    """A named, shareable set of panels."""

    name: str
    panels: list[PanelSpec] = field(default_factory=list)

    # -- sharing --------------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {"name": self.name, "panels": [asdict(p) for p in self.panels]},
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "DashboardSpec":
        data = json.loads(text)
        return cls(
            name=data["name"],
            panels=[PanelSpec(**p) for p in data["panels"]],
        )

    # -- rendering against live data ----------------------------------------------

    def _panel_series(
        self, panel: PanelSpec, tsdb: TimeSeriesStore, now: float
    ) -> SeriesBatch:
        return tsdb.aggregate_across(
            panel.metric, None, now - panel.window_s, now + 1e-9,
            step=panel.step_s, agg=panel.agg,
        )

    def render(self, tsdb: TimeSeriesStore, now: float,
               width: int = 64, height: int = 7) -> str:
        lines = [f"==== dashboard: {self.name} @ t={now:.0f}s ===="]
        for panel in self.panels:
            if panel.kind == "timeseries":
                series = self._panel_series(panel, tsdb, now)
                lines.append(
                    ascii_chart({panel.metric: series}, width=width,
                                height=height, title=f"-- {panel.title}")
                )
            elif panel.kind == "stat":
                series = self._panel_series(panel, tsdb, now)
                if len(series):
                    current = float(series.values[-1])
                    peak = float(np.nanmax(series.values)) or 1.0
                    lines.append(
                        bar_row(panel.title, current, max(peak, 1e-12),
                                unit=panel.unit)
                        + "  " + sparkline(series.values[-24:])
                    )
                else:
                    lines.append(f"{panel.title:>24} (no data)")
            elif panel.kind == "percent_in_state":
                comps = tsdb.components(panel.metric)
                breached = 0
                seen = 0
                for c in comps:
                    b = tsdb.query(panel.metric, c,
                                   now - panel.window_s, now + 1e-9)
                    if not len(b):
                        continue
                    seen += 1
                    v = float(b.values[-1])
                    breach = (v > panel.threshold if panel.above
                              else v < panel.threshold)
                    if breach:
                        breached += 1
                pct = 100.0 * breached / seen if seen else float("nan")
                lines.append(
                    bar_row(panel.title, pct, 100.0, unit="%")
                )
        return "\n".join(lines)


def operations_dashboard() -> DashboardSpec:
    """The default operations view, as a shareable spec."""
    return DashboardSpec(
        name="operations",
        panels=[
            PanelSpec("system power", "system.power_w", kind="stat",
                      agg="last", unit=" W"),
            PanelSpec("queue backlog", "queue.backlog_nodeh",
                      kind="timeseries", agg="last"),
            PanelSpec("fs read B/s", "fs.read_bps", kind="timeseries",
                      agg="sum"),
            PanelSpec("nodes unhealthy", "health.pass_frac",
                      kind="percent_in_state", threshold=1.0,
                      above=False),
            PanelSpec("links congested", "link.stall_ratio",
                      kind="percent_in_state", threshold=0.12,
                      above=True),
        ],
    )
