"""User-scoped job reports: the "users' burning question" answered.

Two paper threads meet here.  Section III-C: "Notification to users of
assessments of system conditions is of interest but relies on the
proper analysis."  And the Conclusions: "Tools are often developed
by/for administrators with root access ... information that might be of
tremendous benefit in answering users' burning question(s) cannot be
shared with them" — the burning question being Section III-B's
highest-priority one: *why did my run's performance vary?*

:func:`job_report` assembles, **scoped to one job a user owns**, the
system-condition assessment an administrator would build by hand:

* the job's own condensed telemetry (what the user may always see);
* shared-resource conditions overlapping the run — filesystem probe
  degradation, congested links its traffic crossed, health events on
  its nodes — *summarized without exposing other users' jobs or
  unrelated components* (the access-control line the paper says sites
  can't draw today);
* a plain-language verdict.

:class:`AccessPolicy` enforces the scoping: a user may query only jobs
they own; everything else raises :class:`PermissionError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING
import numpy as np

from ..analysis.congestion import congestion_regions, jobs_touching_region
from ..core.events import EventKind
from ..storage.jobstore import Allocation, JobIndex
from ..storage.logstore import LogStore
from ..storage.tsdb import TimeSeriesStore

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.topology import Topology

__all__ = ["AccessPolicy", "JobReport", "job_report"]


class AccessPolicy:
    """Per-user scoping over the job index (the missing infrastructure
    the Conclusions lament)."""

    def __init__(self, index: JobIndex) -> None:
        self.index = index

    def authorize(self, user: str, job_id: int) -> Allocation:
        alloc = self.index.get(job_id)
        if alloc.user != user:
            raise PermissionError(
                f"user {user!r} does not own job {job_id}"
            )
        return alloc

    def visible_jobs(self, user: str) -> list[Allocation]:
        return self.index.jobs_of_user(user)


@dataclass
class JobReport:
    """One user-visible assessment of a job's run conditions."""

    job_id: int
    user: str
    app: str
    n_nodes: int
    runtime_s: float | None
    findings: list[str] = field(default_factory=list)
    verdict: str = ""

    def render(self) -> str:
        lines = [
            f"=== run report: job {self.job_id} ({self.app}, "
            f"{self.n_nodes} nodes) for {self.user} ===",
        ]
        if self.runtime_s is not None:
            lines.append(f"runtime: {self.runtime_s:.0f}s")
        if self.findings:
            lines.append("system conditions during your run:")
            lines.extend(f"  - {f}" for f in self.findings)
        else:
            lines.append("no adverse system conditions overlapped "
                         "your run.")
        lines.append(f"assessment: {self.verdict}")
        return "\n".join(lines)


def _fs_degradation_finding(
    tsdb: TimeSeriesStore, t0: float, t1: float
) -> str | None:
    """Was a shared filesystem component degraded during [t0, t1)?

    Each component's probe latency is compared against its healthy
    siblings over the same window — the one-slow-OST-among-many
    signature — so no pre-run baseline is needed.
    """
    comps = tsdb.components("probe.io_latency_s")
    medians: dict[str, float] = {}
    for c in comps:
        during = tsdb.query("probe.io_latency_s", c, t0, t1)
        if len(during) >= 2:
            medians[c] = float(np.median(during.values))
    if len(medians) < 3:
        return None
    fleet = float(np.median(list(medians.values())))
    worst_comp, worst_lat = max(medians.items(), key=lambda kv: kv[1])
    if fleet > 0 and worst_lat / fleet > 3.0:
        return (
            f"shared filesystem component degraded: probe latency "
            f"{worst_lat / fleet:.0f}x its peers during your run"
        )
    return None


def _congestion_finding(
    topo: "Topology",
    tsdb: TimeSeriesStore,
    alloc: Allocation,
    t1: float,
) -> str | None:
    """Did this job's traffic cross a congested network region?"""
    comps = tsdb.components("link.stall_ratio")
    if not comps:
        return None
    # peak stall per link over the job's window
    stall = np.zeros(len(topo.links))
    name_to_idx = {l.name: l.index for l in topo.links}
    for c in comps:
        series = tsdb.query("link.stall_ratio", c, alloc.start, t1)
        if len(series):
            idx = name_to_idx.get(c)
            if idx is not None:
                stall[idx] = float(series.values.max())
    regions = congestion_regions(topo, stall, min_level=2)
    for region in regions:
        if alloc.job_id in jobs_touching_region(topo, region, [alloc]):
            return (
                f"your job's traffic crossed a congested network region "
                f"({region.size} links, peak stall "
                f"{region.max_stall:.0%}) — shared-network contention "
                f"likely slowed communication"
            )
    return None


def _node_event_findings(
    logs: LogStore, alloc: Allocation, t1: float
) -> list[str]:
    """Hardware/health events on the job's own nodes (scoped)."""
    findings = []
    for node in alloc.nodes:
        events = logs.search(
            component=node, t0=alloc.start, t1=t1,
        )
        bad = [e for e in events
               if e.kind in (EventKind.HWERR, EventKind.HEALTH,
                             EventKind.CONSOLE)
               and e.severity >= 4]    # ERROR and up
        for e in bad[:2]:
            findings.append(
                f"node {node} reported: {e.message[:70]}"
            )
    return findings


def job_report(
    user: str,
    job_id: int,
    *,
    index: JobIndex,
    tsdb: TimeSeriesStore,
    logs: LogStore,
    topo: "Topology",
) -> JobReport:
    """Build the scoped run report (raises for jobs the user doesn't own)."""
    alloc = AccessPolicy(index).authorize(user, job_id)
    t1 = alloc.end if alloc.end is not None else np.inf
    report = JobReport(
        job_id=job_id,
        user=user,
        app=alloc.app,
        n_nodes=len(alloc.nodes),
        runtime_s=(alloc.end - alloc.start
                   if alloc.end is not None else None),
    )
    f = _fs_degradation_finding(tsdb, alloc.start, t1)
    if f:
        report.findings.append(f)
    f = _congestion_finding(topo, tsdb, alloc, t1)
    if f:
        report.findings.append(f)
    report.findings.extend(_node_event_findings(logs, alloc, t1))

    if report.findings:
        report.verdict = (
            "system conditions overlapped your run and plausibly "
            "affected performance; rerun comparison is advised"
        )
    else:
        report.verdict = (
            "the system looked healthy during your run; performance "
            "variation is likely intrinsic to the application"
        )
    return report
