"""Series shaping for visualization: alignment, condensation, normalizing.

Figure 5's caption is the spec: "Summing and averaging over nodes
enables condensation of high dimensional data enabling at-a-glance
understanding."  These helpers take the per-component series a store
returns and produce the few lines a human can actually read.
"""

from __future__ import annotations

from typing import Mapping
import numpy as np

from ..core.metric import SeriesBatch

__all__ = ["resample", "condense", "percent_of", "series_matrix"]


def resample(
    batch: SeriesBatch, t0: float, t1: float, step: float,
    agg: str = "mean",
) -> SeriesBatch:
    """Bucket one series onto a fixed grid; empty buckets become NaN.

    Unlike the store's ``downsample`` (which omits empty buckets), plots
    need a regular axis with explicit gaps.
    """
    if step <= 0:
        raise ValueError("step must be positive")
    n_buckets = max(1, int(np.ceil((t1 - t0) / step)))
    grid = t0 + np.arange(n_buckets) * step
    out = np.full(n_buckets, np.nan)
    counts = np.zeros(n_buckets)
    w = batch.in_window(t0, t1)
    if len(w):
        idx = np.floor((w.times - t0) / step).astype(np.int64)
        idx = np.clip(idx, 0, n_buckets - 1)
        if agg == "mean":
            sums = np.bincount(idx, weights=w.values, minlength=n_buckets)
            counts = np.bincount(idx, minlength=n_buckets)
            np.divide(sums, counts, out=out, where=counts > 0)
        elif agg == "sum":
            sums = np.bincount(idx, weights=w.values, minlength=n_buckets)
            counts = np.bincount(idx, minlength=n_buckets)
            out = np.where(counts > 0, sums, np.nan)
        elif agg == "max":
            for i, v in zip(idx, w.values):
                out[i] = v if np.isnan(out[i]) else max(out[i], v)
        else:
            raise ValueError(f"unknown agg {agg!r}")
    comp = str(w.components[0]) if len(w) else "resampled"
    return SeriesBatch.for_component(batch.metric, comp, grid, out)


def condense(
    per_component: Mapping[str, SeriesBatch],
    t0: float,
    t1: float,
    step: float,
    agg: str = "sum",
) -> SeriesBatch:
    """Collapse many per-component series into one (Figure 5).

    Each component is first resampled (mean within bucket), then the
    components are combined per bucket with ``agg`` (sum or mean);
    components missing a bucket are simply absent from it.
    """
    if not per_component:
        return SeriesBatch.empty("condensed")
    metric = next(iter(per_component.values())).metric
    grids = []
    for batch in per_component.values():
        r = resample(batch, t0, t1, step, agg="mean")
        grids.append(r.values)
    stack = np.vstack(grids)
    all_nan = np.isnan(stack).all(axis=0)
    with np.errstate(invalid="ignore"):
        if agg == "sum":
            vals = np.nansum(stack, axis=0)
            vals[all_nan] = np.nan
        elif agg == "mean":
            # avoid the all-NaN-slice RuntimeWarning: compute only where
            # at least one component contributed
            sums = np.nansum(stack, axis=0)
            counts = (~np.isnan(stack)).sum(axis=0)
            vals = np.divide(
                sums, counts,
                out=np.full(stack.shape[1], np.nan),
                where=counts > 0,
            )
        else:
            raise ValueError(f"unknown agg {agg!r}")
    n_buckets = stack.shape[1]
    grid = t0 + np.arange(n_buckets) * step
    return SeriesBatch.for_component(metric, f"condensed({agg})", grid, vals)


def percent_of(batch: SeriesBatch, maximum: float) -> SeriesBatch:
    """Express a series as percent of a capacity (Figure 1's y-axis:
    'mean bandwidth utilization as a percent of maximum')."""
    if maximum <= 0:
        raise ValueError("maximum must be positive")
    return SeriesBatch.for_component(
        batch.metric + ".pct",
        str(batch.components[0]) if len(batch) else "pct",
        batch.times,
        100.0 * batch.values / maximum,
    )


def series_matrix(
    per_component: Mapping[str, SeriesBatch],
    t0: float,
    t1: float,
    step: float,
) -> tuple[list[str], np.ndarray, np.ndarray]:
    """(components, grid, value matrix) for heatmap-style rendering."""
    comps = sorted(per_component)
    n_buckets = max(1, int(np.ceil((t1 - t0) / step)))
    grid = t0 + np.arange(n_buckets) * step
    mat = np.full((len(comps), n_buckets), np.nan)
    for i, c in enumerate(comps):
        mat[i] = resample(per_component[c], t0, t1, step).values
    return comps, grid, mat
