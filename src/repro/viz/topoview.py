"""Topology-contextual aggregation ("network-topology representations").

Section III-B: "Representations in the context of the architecture,
such as network-topology representations, are being developed by sites
... however visualization of complex connectivities is a challenge."
We take the aggregation route the paper endorses: roll per-link metrics
up to structural units (link class, group pair, cabinet) that stay
readable at any machine size, with a text heatmap renderer.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Mapping

import numpy as np

from ..cluster.topology import Topology

__all__ = [
    "by_link_class",
    "group_pair_matrix",
    "cabinet_rollup",
    "render_group_matrix",
]


def by_link_class(
    topo: Topology, link_values: np.ndarray
) -> dict[str, dict[str, float]]:
    """Aggregate a per-link metric by link class (green/black/blue/...).

    Returns {class: {mean, max, count}} — the first question an operator
    asks is "is the congestion local or on the global links?"
    """
    buckets: dict[str, list[float]] = defaultdict(list)
    for link in topo.links:
        buckets[link.klass].append(float(link_values[link.index]))
    return {
        klass: {
            "mean": float(np.mean(vals)),
            "max": float(np.max(vals)),
            "count": float(len(vals)),
        }
        for klass, vals in sorted(buckets.items())
    }


def _router_groups(topo: Topology) -> dict[str, int]:
    rg: dict[str, int] = {}
    for node, router in topo.node_router.items():
        rg.setdefault(router, topo.node_group[node])
    return rg


def group_pair_matrix(
    topo: Topology, link_values: np.ndarray, agg: str = "max"
) -> np.ndarray:
    """Matrix M[g1][g2] of a per-link metric between/within groups.

    Diagonal entries aggregate intra-group links; off-diagonal entries
    aggregate the global links between the two groups.
    """
    rg = _router_groups(topo)
    n_groups = max(rg.values()) + 1 if rg else 0
    cells: dict[tuple[int, int], list[float]] = defaultdict(list)
    for link in topo.links:
        ga = rg.get(link.a)
        gb = rg.get(link.b)
        if ga is None or gb is None:
            continue
        key = (min(ga, gb), max(ga, gb))
        cells[key].append(float(link_values[link.index]))
    mat = np.zeros((n_groups, n_groups))
    fn = np.max if agg == "max" else np.mean
    for (ga, gb), vals in cells.items():
        mat[ga, gb] = mat[gb, ga] = float(fn(vals))
    return mat


def cabinet_rollup(
    topo: Topology, node_values: Mapping[str, float], agg: str = "mean"
) -> dict[str, float]:
    """Aggregate a per-node metric to cabinets (Figure 3's bottom axis)."""
    buckets: dict[str, list[float]] = defaultdict(list)
    for node, value in node_values.items():
        cab = topo.node_cabinet.get(node)
        if cab is not None:
            buckets[cab].append(float(value))
    fn = np.max if agg == "max" else np.mean
    return {cab: float(fn(vals)) for cab, vals in sorted(buckets.items())}


_HEAT = " .:-=+*#%@"


def render_group_matrix(mat: np.ndarray, label: str = "group") -> str:
    """Text heatmap of a group-pair matrix."""
    n = mat.shape[0]
    vmax = float(mat.max()) or 1.0
    lines = [f"{label}-pair heatmap (max={vmax:.3g})"]
    header = "     " + "".join(f"{g:>4}" for g in range(n))
    lines.append(header)
    for i in range(n):
        cells = []
        for j in range(n):
            lvl = int(mat[i, j] / vmax * (len(_HEAT) - 1))
            cells.append(f"   {_HEAT[lvl]}")
        lines.append(f"{i:>4} " + "".join(cells))
    return "\n".join(lines)
