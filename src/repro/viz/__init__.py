"""Visualization: condensation, dashboards, drill-down, paper figures."""

from .dashboard import (
    Dashboard,
    DrillDownResult,
    Tile,
    drill_down,
    percent_in_state,
)
from .figures import (
    FigureData,
    figure1_tas,
    figure2_benchmarks,
    figure3_power,
    figure4_drilldown,
    figure5_perjob,
)
from .render import ascii_chart, bar_row, from_csv, sparkline, to_csv
from .series import condense, percent_of, resample, series_matrix
from .sitematrix import capability_matrix
from .topoview import (
    by_link_class,
    cabinet_rollup,
    group_pair_matrix,
    render_group_matrix,
)
from .dashspec import DashboardSpec, PanelSpec, operations_dashboard
from .userreport import AccessPolicy, JobReport, job_report

__all__ = [
    "Dashboard",
    "DrillDownResult",
    "Tile",
    "drill_down",
    "percent_in_state",
    "FigureData",
    "figure1_tas",
    "figure2_benchmarks",
    "figure3_power",
    "figure4_drilldown",
    "figure5_perjob",
    "ascii_chart",
    "bar_row",
    "from_csv",
    "sparkline",
    "to_csv",
    "capability_matrix",
    "condense",
    "percent_of",
    "resample",
    "series_matrix",
    "by_link_class",
    "cabinet_rollup",
    "group_pair_matrix",
    "render_group_matrix",
    "AccessPolicy",
    "JobReport",
    "job_report",
    "DashboardSpec",
    "PanelSpec",
    "operations_dashboard",
]
