"""Status dashboard: aggregate tiles with drill-down (Figure 4 workflow).

Section III-B: "individual component graphs may decrease in value and
performance as the number of components plotted increases ... Reduced
dimensionality through higher-level aggregations (e.g., percentage of
components in a state, regardless of location) coupled with drill-down
capabilities can enable better at-a-glance understanding."

* :func:`percent_in_state` — the roll-up primitive;
* :class:`Dashboard` — tiles computed from the stores, rendered as text;
* :func:`drill_down` — the Figure 4 investigation: aggregate series →
  peak time → per-component ranking at that time → owning job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..core.metric import SeriesBatch
from ..storage.jobstore import JobIndex
from ..storage.tsdb import TimeSeriesStore
from .render import bar_row, sparkline

__all__ = ["percent_in_state", "Tile", "Dashboard", "DrillDownResult",
           "drill_down"]


def percent_in_state(
    sweep: SeriesBatch, predicate: Callable[[float], bool]
) -> float:
    """Percent of components whose latest value satisfies ``predicate``."""
    if not len(sweep):
        return float("nan")
    vals = sweep.values
    ok = np.fromiter((predicate(float(v)) for v in vals), dtype=bool,
                     count=len(vals))
    return 100.0 * ok.mean()


@dataclass(frozen=True, slots=True)
class Tile:
    name: str
    value: float
    unit: str
    maximum: float          # for the bar scale
    status: str             # "ok" | "warn" | "crit"
    trend: str = ""         # sparkline of recent history


class Dashboard:
    """Builds at-a-glance tiles from a time-series store."""

    def __init__(self, tsdb: TimeSeriesStore) -> None:
        # any store exposing query()/components() works (plain, sharded,
        # or tiered) — the annotation names the canonical one
        self.tsdb = tsdb

    def _latest_sweep(self, metric: str, window_s: float,
                      now: float) -> SeriesBatch:
        comps = self.tsdb.components(metric)
        times, values, keep = [], [], []
        for c in comps:
            b = self.tsdb.query(metric, c, now - window_s, now + 1e-9)
            if len(b):
                keep.append(c)
                times.append(b.times[-1])
                values.append(b.values[-1])
        return SeriesBatch(metric, keep, times, values)

    def _trend(self, metric: str, component: str, now: float,
               window_s: float = 3600.0, points: int = 24) -> str:
        b = self.tsdb.query(metric, component, now - window_s, now + 1e-9)
        if not len(b):
            return ""
        step = max(1, len(b) // points)
        return sparkline(b.values[::step][-points:])

    def tiles(self, now: float, window_s: float = 600.0) -> list[Tile]:
        out: list[Tile] = []
        health = self._latest_sweep("health.pass_frac", window_s, now)
        if len(health):
            pct = percent_in_state(health, lambda v: v >= 1.0)
            out.append(
                Tile("nodes fully healthy", pct, "%", 100.0,
                     "ok" if pct >= 99 else "warn" if pct >= 95 else "crit")
            )
        stall = self._latest_sweep("link.stall_ratio", window_s, now)
        if len(stall):
            pct = percent_in_state(stall, lambda v: v >= 0.12)
            out.append(
                Tile("links congested", pct, "%", 100.0,
                     "ok" if pct < 1 else "warn" if pct < 10 else "crit")
            )
        sysp = self._latest_sweep("system.power_w", window_s, now)
        if len(sysp):
            val = float(sysp.values[-1]) / 1e3
            out.append(
                Tile("system power", val, "kW", max(val * 1.5, 1.0), "ok",
                     trend=self._trend("system.power_w", "system", now))
            )
        depth = self._latest_sweep("queue.depth", window_s, now)
        if len(depth):
            val = float(depth.values[-1])
            out.append(
                Tile("queue depth", val, " jobs", max(val * 2, 10.0),
                     "ok" if val < 50 else "warn",
                     trend=self._trend("queue.depth", "scheduler", now))
            )
        fsr = self._latest_sweep("fs.read_bps", window_s, now)
        if len(fsr):
            val = float(fsr.values.sum()) / 1e9
            out.append(
                Tile("filesystem read", val, " GB/s",
                     max(val * 1.5, 1.0), "ok")
            )
        return out

    def selfmon_tiles(self, now: float,
                      window_s: float = 600.0) -> list[Tile]:
        """Tiles over the monitoring plane's own ``selfmon.*`` vitals.

        Empty when self-monitoring is disabled (no ``selfmon.*`` series
        in the store) — the panel degrades away rather than erroring.
        """
        out: list[Tile] = []
        comp = self._latest_sweep("selfmon.bus.completeness", window_s, now)
        if len(comp):
            pct = 100.0 * float(comp.values[-1])
            out.append(
                Tile("data-path completeness", pct, "%", 100.0,
                     "ok" if pct >= 99.999 else "warn" if pct >= 99 else "crit",
                     trend=self._trend("selfmon.bus.completeness", "bus",
                                       now)),
            )
        depth = self._latest_sweep("selfmon.bus.queue_depth", window_s, now)
        if len(depth):
            backlog = float(depth.values.sum())
            out.append(
                Tile("bus backlog", backlog, " msgs",
                     max(backlog * 2, 10.0),
                     "ok" if backlog == 0 else "warn")
            )
        tick = self._latest_sweep("selfmon.pipeline.tick_ms", window_s, now)
        if len(tick):
            val = float(tick.values[-1])
            out.append(
                Tile("monitoring tick", val, " ms", max(val * 1.5, 10.0),
                     "ok",
                     trend=self._trend("selfmon.pipeline.tick_ms",
                                       "pipeline", now))
            )
        ingest = self._latest_sweep("selfmon.store.tsdb_ingest_rate",
                                    window_s, now)
        if len(ingest):
            val = float(ingest.values[-1])
            out.append(
                Tile("tsdb ingest", val, " samples/s",
                     max(val * 1.5, 1.0), "ok")
            )
        # tiered-transport / sharded-store panels degrade away when the
        # stack runs the flat bus + single store (no such series exist)
        part = self._latest_sweep("selfmon.bus.partition_depth",
                                  window_s, now)
        if len(part):
            backlog = float(part.values.sum())
            out.append(
                Tile(f"partition backlog ({len(part)} parts)", backlog,
                     " msgs", max(backlog * 2, 10.0),
                     "ok" if backlog == 0 else "warn")
            )
        shard = self._latest_sweep("selfmon.store.shard_points",
                                   window_s, now)
        if len(shard):
            total = float(shard.values.sum())
            hottest = float(shard.values.max())
            even = total / len(shard) if len(shard) else 0.0
            skew = hottest / even if even > 0 else 1.0
            out.append(
                Tile(f"shard skew ({len(shard)} shards)", skew, "x",
                     max(skew * 1.5, 2.0),
                     "ok" if skew < 1.5 else "warn")
            )
        # supervised-lifecycle / delivery-ledger panels (absent when the
        # pipeline runs unsupervised)
        health = self._latest_sweep("selfmon.health.state", window_s, now)
        if len(health):
            worst = float(health.values.max())
            impaired = int((health.values > 0).sum())
            out.append(
                Tile(f"monitor health ({len(health)} components)",
                     float(impaired), " impaired", max(len(health), 1.0),
                     "ok" if worst == 0 else
                     "warn" if worst == 1 else "crit")
            )
        lost = self._latest_sweep("selfmon.ledger.lost_points", window_s, now)
        pub = self._latest_sweep("selfmon.ledger.published_points",
                                 window_s, now)
        if len(lost) and len(pub) and float(pub.values[-1]) > 0:
            frac = 100.0 * float(lost.values[-1]) / float(pub.values[-1])
            out.append(
                Tile("accounted loss", frac, "%", 100.0,
                     "ok" if frac == 0 else "warn" if frac < 5 else "crit")
            )
        silent = self._latest_sweep("selfmon.ledger.unaccounted_points",
                                    window_s, now)
        if len(silent):
            val = float(silent.values[-1])
            out.append(
                Tile("unaccounted points", val, "", max(abs(val) * 2, 10.0),
                     "ok" if val == 0 else "crit")
            )
        # freshness panels (absent when trace propagation is disabled)
        p99 = self._latest_sweep("selfmon.freshness.e2e_p99_s", window_s, now)
        if len(p99):
            val = float(p99.values[-1])
            out.append(
                Tile("ingest-to-queryable p99", val, " s",
                     max(val * 1.5, 10.0), "ok",
                     trend=self._trend("selfmon.freshness.e2e_p99_s",
                                       "freshness", now))
            )
        burn = self._latest_sweep("selfmon.freshness.slo_burn_rate",
                                  window_s, now)
        if len(burn):
            worst = float(burn.values.max())
            out.append(
                Tile("freshness SLO burn", worst, "x",
                     max(worst * 1.5, 2.0),
                     "ok" if worst <= 1.0 else "crit")
            )
        breaches = self._latest_sweep("selfmon.freshness.slo_breaches",
                                      window_s, now)
        if len(breaches):
            total = float(breaches.values.sum())
            out.append(
                Tile("freshness SLO breaches", total, "",
                     max(total * 2, 5.0),
                     "ok" if total == 0 else "crit")
            )
        # serving-plane panels (absent when no query front end is wired)
        queries = self._latest_sweep("selfmon.serve.queries", window_s,
                                     now)
        served_any = len(queries) and float(queries.values[-1]) > 0
        hit = self._latest_sweep("selfmon.serve.cache_hit_ratio",
                                 window_s, now)
        if len(hit):
            pct = 100.0 * float(hit.values[-1])
            out.append(
                # a 0% ratio on an idle plane is not a problem — only
                # warn when queries have actually flowed
                Tile("query cache hit ratio", pct, "%", 100.0,
                     "warn" if served_any and pct < 50 else "ok",
                     trend=self._trend("selfmon.serve.cache_hit_ratio",
                                       "result-cache", now))
            )
        qps = self._latest_sweep("selfmon.serve.qps", window_s, now)
        if len(qps):
            val = float(qps.values[-1])
            out.append(
                Tile("query rate", val, " q/s", max(val * 1.5, 1.0), "ok")
            )
        shed = self._latest_sweep("selfmon.serve.rejected", window_s, now)
        if len(shed):
            val = float(shed.values[-1])
            out.append(
                Tile("queries shed", val, "", max(val * 2, 10.0),
                     "ok" if val == 0 else "warn")
            )
        return out

    def render(self, now: float, window_s: float = 600.0) -> str:
        lines = [f"=== system status @ t={now:.0f}s ==="]
        for tile in self.tiles(now, window_s):
            mark = {"ok": " ", "warn": "!", "crit": "X"}[tile.status]
            lines.append(
                f"{mark} " + bar_row(tile.name, tile.value, tile.maximum,
                                     unit=tile.unit)
                + (f"  {tile.trend}" if tile.trend else "")
            )
        selfmon = self.selfmon_tiles(now, window_s)
        if selfmon:
            lines.append("--- monitoring plane ---")
            for tile in selfmon:
                mark = {"ok": " ", "warn": "!", "crit": "X"}[tile.status]
                lines.append(
                    f"{mark} " + bar_row(tile.name, tile.value, tile.maximum,
                                         unit=tile.unit)
                    + (f"  {tile.trend}" if tile.trend else "")
                )
        return "\n".join(lines)


@dataclass(frozen=True, slots=True)
class DrillDownResult:
    """Outcome of the aggregate -> component -> job investigation."""

    metric: str
    peak_time: float
    peak_value: float
    ranked_components: tuple[tuple[str, float], ...]
    job_id: int | None
    job_app: str | None


def drill_down(
    tsdb: TimeSeriesStore,
    aggregate_metric: str,
    component_metric: str,
    t0: float,
    t1: float,
    index: JobIndex | None = None,
    component_to_nodes: Callable[[str], Sequence[str]] | None = None,
    top_k: int = 5,
) -> DrillDownResult:
    """The Figure 4 workflow as one call.

    1. find the peak of the aggregate series in [t0, t1);
    2. rank components of ``component_metric`` at the peak time;
    3. attribute the peak to the job owning the top contributor
       (via ``index``; ``component_to_nodes`` maps a non-node component
       such as an OST to candidate nodes — for filesystem metrics the
       attribution goes through whichever job was doing the most I/O,
       which the caller encodes in that mapping).
    """
    agg = tsdb.aggregate_across(aggregate_metric, None, t0, t1, step=60.0)
    if not len(agg):
        return DrillDownResult(aggregate_metric, float("nan"),
                               float("nan"), (), None, None)
    peak_i = int(np.nanargmax(agg.values))
    peak_t = float(agg.times[peak_i])
    peak_v = float(agg.values[peak_i])

    per_comp = tsdb.query_components(
        component_metric, None, peak_t - 30.0, peak_t + 90.0
    )
    ranked = sorted(
        (
            (c, float(b.values.mean()))
            for c, b in per_comp.items()
            if len(b)
        ),
        key=lambda cv: -cv[1],
    )[:top_k]

    job_id = None
    job_app = None
    if index is not None and ranked:
        top_comp = ranked[0][0]
        candidates = (
            list(component_to_nodes(top_comp))
            if component_to_nodes is not None
            else [top_comp]
        )
        for node in candidates:
            alloc = index.job_on_node_at(node, peak_t)
            if alloc is not None:
                job_id = alloc.job_id
                job_app = alloc.app
                break
    return DrillDownResult(
        metric=aggregate_metric,
        peak_time=peak_t,
        peak_value=peak_v,
        ranked_components=tuple(ranked),
        job_id=job_id,
        job_app=job_app,
    )
