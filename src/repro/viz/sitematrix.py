"""Table I, regenerated: the per-site capability matrix.

The paper's Table I is a hand-maintained sites-vs-capabilities grid.
Here the rows are *derived* — each site's declared
:meth:`~repro.sites.config.SiteConfig.capabilities` checked against
live introspection of the built stack
(:func:`~repro.sites.build.site_capabilities`) — so the rendered matrix
is machine-checkable rather than prose: any drift between what a site
declares and what actually got built shows up as a flagged cell.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["capability_matrix"]

#: column order of the rendered matrix (capability-dict keys)
_COLUMNS = (
    ("site", "site"),
    ("system", "system"),
    ("topology", "topology"),
    ("nodes", "nodes"),
    ("gpus", "gpus"),
    ("transport", "transport"),
    ("shards", "shards"),
    ("levels", "levels"),
    ("disk", "disk"),
    ("workers", "workers"),
    ("cadence_s", "cadence"),
    ("supervised", "superv"),
    ("freshness", "fresh"),
    ("tenants", "tenants"),
)


def _cell(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "-"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def capability_matrix(
    rows: Sequence[Mapping],
    drift: Mapping[str, Sequence[str]] | None = None,
    title: str = "per-site capability matrix (Table I, regenerated)",
) -> str:
    """Render capability rows as an aligned sites-vs-capabilities table.

    ``drift`` optionally maps site name -> capability keys whose
    declared and live values disagree; those cells render with a ``!``
    suffix and the legend calls them out.
    """
    if not rows:
        return "(no sites)"
    drift = drift or {}
    table: list[list[str]] = []
    header = [label for _, label in _COLUMNS]
    for row in rows:
        site = str(row.get("site", ""))
        bad = set(drift.get(site, ()))
        table.append([
            _cell(row.get(key, "")) + ("!" if key in bad else "")
            for key, _ in _COLUMNS
        ])
    widths = [
        max(len(header[i]), *(len(r[i]) for r in table))
        for i in range(len(header))
    ]
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    lines = [title, fmt(header), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in table)
    flagged = sorted(s for s, keys in drift.items() if keys)
    if flagged:
        lines.append("")
        lines.append(
            "! = declared capability drifts from the built stack: "
            + ", ".join(
                f"{s} ({', '.join(drift[s])})" for s in flagged
            )
        )
    return "\n".join(lines)
