"""Regeneration of the paper's figures from stored telemetry.

Each ``figure*`` builder queries the stores exactly the way the owning
site's dashboard would and returns a :class:`FigureData` — named panels
of series plus the quantitative summary the figure's caption makes —
so benches can assert the *shape* (who is higher, by what factor) and
examples can render the ASCII version.

=========  =================================================================
Figure 1   NCSA: mean injection bandwidth %, pre-TAS vs post-TAS epochs
Figure 2   NERSC: benchmark FOMs over time with degradation onsets
Figure 3   KAUST: system power (top) + per-cabinet power (bottom)
Figure 4   NCSA: aggregate FS read b/w -> per-OST drill-down -> owning job
Figure 5   NCSA: per-job multi-metric condensed timeseries + CSV download
=========  =================================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.metric import SeriesBatch
from ..storage.jobstore import JobIndex
from ..storage.tsdb import TimeSeriesStore
from .dashboard import DrillDownResult, drill_down
from .render import ascii_chart, to_csv
from .series import condense, resample

__all__ = ["FigureData", "figure1_tas", "figure2_benchmarks",
           "figure3_power", "figure4_drilldown", "figure5_perjob"]


@dataclass
class FigureData:
    """One regenerated figure: panels of named series + caption facts."""

    title: str
    panels: list[tuple[str, dict[str, SeriesBatch]]]
    summary: dict = field(default_factory=dict)

    def render(self, width: int = 72, height: int = 10) -> str:
        parts = [f"## {self.title}"]
        for panel_title, series in self.panels:
            parts.append(
                ascii_chart(series, width=width, height=height,
                            title=f"-- {panel_title}")
            )
        if self.summary:
            parts.append("summary: " + ", ".join(
                f"{k}={v:.4g}" if isinstance(v, float) else f"{k}={v}"
                for k, v in self.summary.items()
            ))
        return "\n".join(parts)

    def csv(self) -> str:
        """The NCSA-style raw-data download for every panel."""
        merged: dict[str, SeriesBatch] = {}
        for panel_title, series in self.panels:
            for name, batch in series.items():
                merged[f"{panel_title}/{name}"] = batch
        return to_csv(merged)


def figure1_tas(
    tsdb: TimeSeriesStore,
    pre_window: tuple[float, float],
    post_window: tuple[float, float],
    step: float = 60.0,
) -> FigureData:
    """Mean injection bandwidth (% of max) before and after TAS.

    The paper's claim: mean bandwidth utilization is "significantly
    lower over the pre-TAS time period (left) than when TAS was being
    utilized (right)" — TAS placements decongest the shared links, so
    applications actually *achieve* more of their injection demand.
    """
    def epoch_mean(window):
        t0, t1 = window
        per_node = tsdb.query_components("node.inject_bw_frac", None, t0, t1)
        return condense(per_node, t0, t1, step, agg="mean")

    pre = epoch_mean(pre_window)
    post = epoch_mean(post_window)
    # fractions in [0,1] -> percent of NIC maximum (percent_of with a
    # capacity of 1.0 then reads as percent)
    pre_pct = SeriesBatch.for_component(
        "inject_pct", "pre-TAS", pre.times, pre.values * 100.0
    )
    post_pct = SeriesBatch.for_component(
        "inject_pct", "post-TAS", post.times, post.values * 100.0
    )
    def _mean_pct(batch: SeriesBatch) -> float:
        if not len(batch):
            return 0.0
        finite = batch.values[np.isfinite(batch.values)]
        return float(finite.mean()) if len(finite) else 0.0

    pre_mean = _mean_pct(pre_pct)
    post_mean = _mean_pct(post_pct)
    return FigureData(
        title="Figure 1: mean injection bandwidth (% of max), "
              "pre-TAS vs post-TAS",
        panels=[
            ("pre-TAS epoch", {"mean inject %": pre_pct}),
            ("post-TAS epoch", {"mean inject %": post_pct}),
        ],
        summary={
            "pre_mean_pct": pre_mean,
            "post_mean_pct": post_mean,
            "post_over_pre": post_mean / pre_mean if pre_mean else float("inf"),
        },
    )


def figure2_benchmarks(
    tsdb: TimeSeriesStore,
    t0: float,
    t1: float,
    benchmarks: Sequence[str] = ("dgemm", "allreduce", "ior_read",
                                 "mdtest", "stream"),
) -> FigureData:
    """Benchmark FOM tracking over time (per-benchmark panels)."""
    panels = []
    summary: dict = {}
    for name in benchmarks:
        series = tsdb.query("bench.fom", name, t0, t1)
        if not len(series):
            continue
        panels.append((f"benchmark {name}", {name: series}))
        base = float(np.median(series.values[: max(3, len(series) // 10)]))
        worst = float(series.values.min())
        summary[f"{name}_worst_frac"] = worst / base if base else float("nan")
    return FigureData(
        title="Figure 2: benchmark performance over time",
        panels=panels,
        summary=summary,
    )


def figure3_power(
    tsdb: TimeSeriesStore,
    t0: float,
    t1: float,
) -> FigureData:
    """System power (top) and per-cabinet power (bottom panels)."""
    system = tsdb.query("system.power_w", "system", t0, t1)
    cabinets = tsdb.query_components("cabinet.power_w", None, t0, t1)
    # caption facts: spread between cabinets at the worst moment, and
    # the total-draw drop during the imbalance window
    spread = 1.0
    spread_t = float("nan")
    if cabinets:
        comps, mats = zip(*(
            (c, resample(b, t0, t1, 60.0).values)
            for c, b in sorted(cabinets.items())
        ))
        mat = np.vstack(mats)
        with np.errstate(invalid="ignore"):
            col_ok = np.isfinite(mat).all(axis=0) & (mat > 0).all(axis=0)
        if col_ok.any():
            ratios = np.full(mat.shape[1], np.nan)
            ratios[col_ok] = mat[:, col_ok].max(0) / mat[:, col_ok].min(0)
            i = int(np.nanargmax(ratios))
            spread = float(ratios[i])
            spread_t = t0 + i * 60.0
    drop = float("nan")
    if len(system):
        smax = float(np.nanmax(system.values))
        smin = float(np.nanmin(system.values))
        drop = smax / smin if smin > 0 else float("nan")
    return FigureData(
        title="Figure 3: Shaheen2-style power monitoring",
        panels=[
            ("overall power usage", {"system": system}),
            ("power usage per cabinet", dict(sorted(cabinets.items()))),
        ],
        summary={
            "max_cabinet_spread": spread,
            "spread_time_s": spread_t,
            "system_max_over_min": drop,
        },
    )


def figure4_drilldown(
    tsdb: TimeSeriesStore,
    index: JobIndex,
    t0: float,
    t1: float,
) -> tuple[FigureData, DrillDownResult]:
    """Aggregate FS read b/w, drill-down at the peak, job attribution."""
    agg = tsdb.aggregate_across("fs.read_bps", None, t0, t1, step=60.0)

    result = drill_down(
        tsdb,
        aggregate_metric="fs.read_bps",
        component_metric="ost.read_bps",
        t0=t0,
        t1=t1,
    )
    # job attribution via the per-job I/O series ("per-job aggregation",
    # Section III-B): whichever job moved the most bytes at the peak
    job_id = None
    job_app = None
    per_job = tsdb.query_components(
        "job.io_bps", None, result.peak_time - 90.0, result.peak_time + 90.0
    )
    ranked_jobs = sorted(
        ((c, float(b.values.max())) for c, b in per_job.items() if len(b)),
        key=lambda cv: -cv[1],
    )
    if ranked_jobs:
        job_id = int(ranked_jobs[0][0].split(".", 1)[1])
        if job_id in index:
            job_app = index.get(job_id).app
    result = DrillDownResult(
        metric=result.metric,
        peak_time=result.peak_time,
        peak_value=result.peak_value,
        ranked_components=result.ranked_components,
        job_id=job_id,
        job_app=job_app,
    )
    per_ost = tsdb.query_components(
        "ost.read_bps", None, result.peak_time - 300, result.peak_time + 300
    )
    fig = FigureData(
        title="Figure 4: aggregate I/O with drill-down to components",
        panels=[
            ("system aggregate read B/s", {"fs.read_bps": agg}),
            ("per-OST read B/s around the peak",
             {c: b for c, b in sorted(per_ost.items()) if len(b)}),
        ],
        summary={
            "peak_read_Bps": result.peak_value,
            "peak_time_s": result.peak_time,
            "attributed_job": result.job_id if result.job_id else -1,
        },
    )
    return fig, result


def figure5_perjob(
    tsdb: TimeSeriesStore,
    index: JobIndex,
    job_id: int,
    metrics: Sequence[tuple[str, str]] = (
        ("node.cpu_util", "mean"),
        ("node.power_w", "sum"),
        ("node.mem_free_gb", "mean"),
        ("node.inject_bw_frac", "mean"),
    ),
    step: float = 60.0,
) -> FigureData:
    """Per-job multi-metric timeseries condensed over the job's nodes."""
    alloc = index.get(job_id)
    panels = []
    for metric, agg in metrics:
        series = index.condense_job_series(tsdb, job_id, metric,
                                           agg=agg, step=step)
        panels.append((f"{metric} ({agg} over nodes)", {metric: series}))
    return FigureData(
        title=(
            f"Figure 5: job {job_id} ({alloc.app}, "
            f"{len(alloc.nodes)} nodes) timeseries"
        ),
        panels=panels,
        summary={"job_id": job_id, "n_nodes": len(alloc.nodes)},
    )
