"""Terminal rendering and controlled data release: ASCII charts + CSV.

NCSA "provides the ability to download both plot images and the
associated Comma Separated Value (CSV) formatted data ... to enable
controlled release of data to users" (Section III-B).  Every chart here
can round-trip its data through :func:`to_csv`/:func:`from_csv`, so the
examples and benches emit exactly the artifact the paper describes.
"""

from __future__ import annotations

import io
from typing import Mapping, Sequence

import numpy as np

from ..core.metric import SeriesBatch

__all__ = ["ascii_chart", "sparkline", "to_csv", "from_csv", "bar_row"]

_SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line unicode sparkline; NaNs render as spaces."""
    v = np.asarray(values, dtype=float)
    finite = v[np.isfinite(v)]
    if len(finite) == 0:
        return " " * len(v)
    lo, hi = float(finite.min()), float(finite.max())
    span = hi - lo or 1.0
    out = []
    for x in v:
        if not np.isfinite(x):
            out.append(" ")
        else:
            idx = int((x - lo) / span * (len(_SPARK) - 1))
            out.append(_SPARK[idx])
    return "".join(out)


def ascii_chart(
    series: Mapping[str, SeriesBatch],
    width: int = 72,
    height: int = 14,
    title: str = "",
    y_label: str = "",
) -> str:
    """Multi-series ASCII line chart with axes.

    Each series gets a marker character; values are resampled by column
    (mean within column).  Good enough for dashboards in a terminal,
    and — more to the point — for examples whose output a reader can
    eyeball against the paper's figures.
    """
    if not series or all(len(b) == 0 for b in series.values()):
        return "(no data)"
    markers = "*o+x#@%&"
    # gather global extents
    t_min = min(b.times.min() for b in series.values() if len(b))
    t_max = max(b.times.max() for b in series.values() if len(b))
    if t_max <= t_min:
        t_max = t_min + 1.0
    all_vals = np.concatenate(
        [b.values[np.isfinite(b.values)] for b in series.values() if len(b)]
    )
    if len(all_vals) == 0:
        return "(no finite data)"
    v_min, v_max = float(all_vals.min()), float(all_vals.max())
    if v_max <= v_min:
        v_max = v_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for si, (name, batch) in enumerate(series.items()):
        marker = markers[si % len(markers)]
        if not len(batch):
            continue
        cols = ((batch.times - t_min) / (t_max - t_min) * (width - 1))
        cols = np.clip(cols.astype(int), 0, width - 1)
        # mean per column
        col_vals: dict[int, list[float]] = {}
        for c, v in zip(cols, batch.values):
            if np.isfinite(v):
                col_vals.setdefault(int(c), []).append(float(v))
        for c, vals in col_vals.items():
            v = float(np.mean(vals))
            row = int((v - v_min) / (v_max - v_min) * (height - 1))
            grid[height - 1 - row][c] = marker

    lines = []
    if title:
        lines.append(title)
    label_w = 10
    for r, row in enumerate(grid):
        if r == 0:
            lab = f"{v_max:.3g}"
        elif r == height - 1:
            lab = f"{v_min:.3g}"
        elif r == height // 2:
            lab = y_label[: label_w - 1]
        else:
            lab = ""
        lines.append(f"{lab:>{label_w}} |" + "".join(row))
    lines.append(" " * label_w + "-" * (width + 2))
    lines.append(
        f"{'':{label_w}}  t={t_min:.0f}s"
        + " " * max(1, width - 24)
        + f"t={t_max:.0f}s"
    )
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * label_w + "  " + legend)
    return "\n".join(lines)


def bar_row(label: str, value: float, maximum: float, width: int = 40,
            unit: str = "") -> str:
    """One horizontal bar (dashboard tile row); NaN renders as n/a."""
    if not np.isfinite(value):
        return f"{label:>24} [{'.' * width}] n/a"
    frac = 0.0 if maximum <= 0 else min(max(value / maximum, 0.0), 1.0)
    filled = int(frac * width)
    return (
        f"{label:>24} [{'#' * filled}{'.' * (width - filled)}] "
        f"{value:.3g}{unit}"
    )


def to_csv(series: Mapping[str, SeriesBatch]) -> str:
    """Long-format CSV: metric,component,time,value — the NCSA download."""
    buf = io.StringIO()
    buf.write("metric,component,time,value\n")
    for name, batch in series.items():
        for c, t, v in zip(batch.components, batch.times, batch.values):
            val = "" if not np.isfinite(v) else repr(float(v))
            buf.write(f"{batch.metric},{c},{float(t)!r},{val}\n")
    return buf.getvalue()


def from_csv(text: str) -> dict[str, SeriesBatch]:
    """Inverse of :func:`to_csv`; key is ``metric@component``."""
    rows: dict[str, tuple[str, list, list, list]] = {}
    lines = text.strip().splitlines()
    if lines and lines[0].startswith("metric,"):
        lines = lines[1:]
    for line in lines:
        metric, comp, t, v = line.split(",")
        key = f"{metric}@{comp}"
        entry = rows.setdefault(key, (metric, [], [], []))
        entry[1].append(comp)
        entry[2].append(float(t))
        entry[3].append(float(v) if v else float("nan"))
    return {
        key: SeriesBatch(metric, comps, times, vals)
        for key, (metric, comps, times, vals) in rows.items()
    }
