"""Execution models: the tick loop as a pluggable worker topology.

The paper's sites run collection, aggregation, and ingest as genuinely
distributed daemons; our reproduction historically executed everything
as a single-threaded in-process tick loop.  An :class:`ExecutionModel`
makes the concurrency a deployment knob:

``SerialExecutor``
    today's behaviour, the default — every plane runs inline in the
    main thread, bit-identical to the historic tick loop.

``ThreadedExecutor``
    a pool of N workers that the *data-parallel* planes fan out over:
    due-collector sweeps (:meth:`repro.sources.base.CollectionScheduler.poll`),
    per-shard TSDB ingest
    (:meth:`repro.storage.sharded.ShardedTimeSeriesStore.append_parallel`),
    and aggregation-tree leaf coalescing
    (:meth:`repro.transport.aggtree.AggregatorTree.pump`).  Threads —
    not processes — because every plane shares in-process state
    (stores, ledgers, simulated machine) that does not pickle; the
    wall-clock win comes from overlapping the simulated remote RTTs of
    distributed daemons (:mod:`repro.runtime.latency`), which release
    the GIL while they wait.

The determinism contract both models honour: workers only ever run
*pure compute* (a collector reading the frozen machine state, a shard
appending its private pieces, a leaf coalescing its private buffer).
Every shared-state mutation — transport publish, ledger stamps,
supervision records, freshness folds — happens in the main thread, in
a deterministic order, at the :meth:`map_ordered` barrier.  That is why
a seeded scenario produces identical ledger totals, health timelines,
and query results under either executor (asserted by the
serial-vs-threaded equivalence suite).

The stage loop itself (:meth:`ExecutionModel.run_tick`) always runs
serially in the main thread: stages synchronize at tick barriers
against the simulated clock, and concurrency lives *inside* the
data-parallel planes, not between stages.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Sequence

__all__ = [
    "ExecStats",
    "ExecutionModel",
    "SerialExecutor",
    "ThreadedExecutor",
    "make_executor",
]


@dataclass
class ExecStats:
    """Lifetime telemetry of one executor (the ``selfmon.exec.*`` feed).

    ``busy_s`` sums per-task wall time across workers; ``map_wall_s``
    is the coordinator wall time spent inside :meth:`map_ordered`, so
    ``busy_s / (workers * map_wall_s)`` is the worker busy fraction.
    ``barrier_wait_s`` is the coordinator time blocked collecting
    results after the last submission; ``handoff_peak`` the largest
    task backlog handed to the pool beyond its worker count.
    """

    barriers: int = 0
    tasks: int = 0
    busy_s: float = 0.0
    map_wall_s: float = 0.0
    barrier_wait_s: float = 0.0
    handoff_peak: int = 0


def _timed(fn: Callable[[], Any]) -> tuple[Any, float]:
    t0 = time.perf_counter()
    return fn(), time.perf_counter() - t0


class ExecutionModel:
    """How the pipeline's data-parallel planes execute for one tick."""

    #: short identity used as the ``selfmon.exec.*`` component name
    name = "serial"
    #: worker count; ``parallel`` planes engage only when > 1
    workers = 1

    def __init__(self) -> None:
        self.stats = ExecStats()

    @property
    def parallel(self) -> bool:
        return self.workers > 1

    def map_ordered(
        self, fns: Sequence[Callable[[], Any]]
    ) -> list[Any]:
        """Run every thunk and return their results in submission order.

        This is the tick barrier: the call returns only when every
        thunk has finished, and the result order is the submission
        order regardless of completion order — callers then apply
        shared-state mutations serially in that deterministic order.
        Thunks must not raise (plane callers wrap their work in
        exception-capturing closures so one failure cannot abort the
        barrier).
        """
        raise NotImplementedError

    def run_tick(self, pipeline, dt: float) -> None:
        """Advance the machine one tick and run the monitoring plane.

        Every tick opens a root ``tick`` span and iterates the
        dependency-scheduled stage list, one child span per stage, so
        the introspector can attribute wall time to exactly the stage
        that spent it.  Requests returned by a stage accumulate and are
        executed by the response stage at its position in the order.
        Stages always run serially in the calling thread; parallel
        executors fan out *inside* the data-parallel planes only.
        """
        tracer = pipeline.tracer
        pending = pipeline._pending_requests
        sup = pipeline.supervisor
        with tracer.span("tick"):
            pipeline.ticks += 1
            pipeline.machine.step(dt)
            now = pipeline.machine.now
            keys = pipeline._stage_keys
            for stage in pipeline.stages:
                if sup is not None:
                    key = keys.get(stage.name)
                    if key is None:
                        key = keys[stage.name] = "stage:" + stage.name
                    if not sup.should_run(key, now):
                        continue   # quarantined: degrade the tick
                with tracer.span(stage.name):
                    if sup is None:
                        raised = stage.run(pipeline, now)
                    else:
                        try:
                            raised = stage.run(pipeline, now)
                        except Exception as exc:
                            # a failing stage degrades the tick instead
                            # of killing it; the breaker quarantines a
                            # repeat offender under backoff
                            sup.record(
                                key, False, now,
                                reason=f"raised {type(exc).__name__}",
                            )
                            continue
                        sup.record(key, True, now)
                    if raised:
                        pending.extend(raised)

    def shutdown(self) -> None:
        """Release worker resources (idempotent; no-op when serial)."""

    def snapshot(self) -> dict[str, float | int | str]:
        """Point-in-time executor vitals (the selfmon/introspect feed)."""
        s = self.stats
        denom = s.map_wall_s * self.workers
        return {
            "name": self.name,
            "workers": self.workers,
            "barriers": s.barriers,
            "tasks": s.tasks,
            "busy_fraction": (s.busy_s / denom) if denom > 0 else 0.0,
            "barrier_wait_ms": 1000.0 * s.barrier_wait_s,
            "handoff_depth": s.handoff_peak,
        }


class SerialExecutor(ExecutionModel):
    """Today's behaviour: every plane inline, in order, one thread."""

    name = "serial"
    workers = 1

    def map_ordered(self, fns):
        s = self.stats
        s.barriers += 1
        t0 = time.perf_counter()
        out = [fn() for fn in fns]
        wall = time.perf_counter() - t0
        s.tasks += len(out)
        s.busy_s += wall
        s.map_wall_s += wall
        return out


class ThreadedExecutor(ExecutionModel):
    """N pooled workers fanning out the data-parallel planes.

    The pool is created lazily on first use and torn down by
    :meth:`shutdown`.  Results are collected in submission order —
    worker scheduling can interleave task *execution* arbitrarily, but
    the barrier re-serializes the *results*, which is all the callers'
    determinism contract needs.
    """

    name = "threaded"

    def __init__(self, workers: int = 4) -> None:
        super().__init__()
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = int(workers)
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-exec"
            )
        return self._pool

    def map_ordered(self, fns):
        s = self.stats
        s.barriers += 1
        if len(fns) <= 1:           # nothing to overlap: skip the pool
            t0 = time.perf_counter()
            out = [fn() for fn in fns]
            wall = time.perf_counter() - t0
            s.tasks += len(out)
            s.busy_s += wall
            s.map_wall_s += wall
            return out
        pool = self._ensure_pool()
        backlog = len(fns) - self.workers
        if backlog > s.handoff_peak:
            s.handoff_peak = backlog
        t0 = time.perf_counter()
        futures = [pool.submit(_timed, fn) for fn in fns]
        t_submitted = time.perf_counter()
        results: list[Any] = []
        busy = 0.0
        for f in futures:
            r, task_wall = f.result()
            results.append(r)
            busy += task_wall
        t1 = time.perf_counter()
        s.tasks += len(results)
        s.busy_s += busy
        s.map_wall_s += t1 - t0
        s.barrier_wait_s += t1 - t_submitted
        return results

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def make_executor(spec=None) -> ExecutionModel:
    """Resolve the pipeline's ``executor=`` knob.

    ``None``/``"serial"`` is the :class:`SerialExecutor` default; an
    ``int`` N picks :class:`ThreadedExecutor` over N workers (N <= 1
    collapses to serial); ``"threaded"`` / ``"threaded:N"`` spell the
    same thing; an :class:`ExecutionModel` instance passes through.
    """
    if spec is None:
        return SerialExecutor()
    if isinstance(spec, ExecutionModel):
        return spec
    if isinstance(spec, bool):       # bool is an int; reject explicitly
        raise TypeError("executor must be None, str, int, or an "
                        "ExecutionModel, not bool")
    if isinstance(spec, int):
        return SerialExecutor() if spec <= 1 else ThreadedExecutor(spec)
    if isinstance(spec, str):
        s = spec.strip().lower()
        if s == "serial":
            return SerialExecutor()
        if s == "threaded":
            return ThreadedExecutor()
        if s.startswith("threaded:"):
            return ThreadedExecutor(int(s.split(":", 1)[1]))
        raise ValueError(
            f"unknown executor {spec!r}; expected 'serial', 'threaded', "
            f"or 'threaded:N'"
        )
    raise TypeError(
        f"executor must be None, str, int, or an ExecutionModel; "
        f"got {type(spec).__name__}"
    )
