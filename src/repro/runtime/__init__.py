"""Parallel runtime: pluggable execution models for the tick loop.

Kept intentionally thin: only the executor abstractions and the
simulated-latency wrappers are re-exported here.  The scaling harness
(:mod:`repro.runtime.scaling`) imports the pipeline and must be
imported explicitly to keep this package free of import cycles.
"""

from repro.runtime.executor import (
    ExecStats,
    ExecutionModel,
    SerialExecutor,
    ThreadedExecutor,
    make_executor,
)
from repro.runtime.latency import LatentStore, RemoteFleetCollector

__all__ = [
    "ExecStats",
    "ExecutionModel",
    "SerialExecutor",
    "ThreadedExecutor",
    "make_executor",
    "LatentStore",
    "RemoteFleetCollector",
]
