"""Worker-scaling harness for the ``scale --workers`` sweep.

Builds the Trinity-sized synchronized-sweep scenario the analysis-plane
benchmark already uses — 27,648 components, one sample per component
per tick — but monitored end to end through the pipeline, with the
remote-I/O latency model from :mod:`repro.runtime.latency` on both
distributed edges: every collector sweep pays a scrape RTT and every
store-shard append pays a write RTT.  Wall time per step is then
dominated by waiting, which is exactly the cost a threaded execution
model overlaps; the sweep measures how much of it each worker count
hides.

Deliberately lean: tracing, self-monitoring, and freshness are off so
the measurement isolates the execution model, not the observability
planes (the equivalence tests cover those with full planes on).
"""

from __future__ import annotations

import time

__all__ = [
    "DEFAULT_COMPONENTS",
    "DEFAULT_FLEETS",
    "build_scaling_pipeline",
    "measure_workers",
    "sweep_workers",
]

#: Trinity-haswell scale: components per synchronized sweep
DEFAULT_COMPONENTS = 27_648
#: fleet slices (= concurrent scrape RTTs a parallel sweep can overlap)
DEFAULT_FLEETS = 4


def build_scaling_pipeline(
    workers: int,
    n_components: int = DEFAULT_COMPONENTS,
    fleets: int = DEFAULT_FLEETS,
    shards: int = 4,
    scrape_rtt_s: float = 0.005,
    write_rtt_s: float = 0.01,
    seed: int = 7,
):
    """One lean pipeline over ``fleets`` remote collector slices and a
    ``shards``-way store one write-RTT away, on ``workers`` workers."""
    from ..cluster import (
        JobGenerator,
        Machine,
        PackedPlacement,
        build_dragonfly,
    )
    from ..obs.trace import Tracer
    from ..pipeline import MonitoringPipeline
    from ..storage.sharded import ShardedTimeSeriesStore
    from .latency import LatentStore, RemoteFleetCollector

    per_fleet, extra = divmod(n_components, fleets)
    collectors = []
    first = 0
    for i in range(fleets):
        n = per_fleet + (1 if i < extra else 0)
        collectors.append(RemoteFleetCollector(
            f"fleet-{i}", interval_s=10.0, n_components=n,
            rtt_s=scrape_rtt_s, first_component=first,
        ))
        first += n

    store = ShardedTimeSeriesStore(shards=shards)
    store.shards = [LatentStore(s, rtt_s=write_rtt_s)
                    for s in store.shards]

    machine = Machine(
        build_dragonfly(groups=2, chassis_per_group=3,
                        blades_per_chassis=1),
        placement=PackedPlacement(),
        job_generator=JobGenerator(mean_interarrival_s=100_000.0,
                                   max_nodes=2, seed=seed),
        gpu_nodes=(),
        seed=seed,
    )
    return MonitoringPipeline(
        machine,
        collectors=collectors,
        tick_s=10.0,
        tracer=Tracer(enabled=False),
        selfmon_interval_s=None,
        tsdb=store,
        freshness=False,
        executor=workers,
    )


def measure_workers(
    workers: int,
    n_steps: int = 20,
    **build_kw,
) -> dict:
    """Run ``n_steps`` ticks on ``workers`` workers; return vitals."""
    pipeline = build_scaling_pipeline(workers, **build_kw)
    try:
        t0 = time.perf_counter()
        for _ in range(n_steps):
            pipeline.step()
        wall = time.perf_counter() - t0
        stats = pipeline.tsdb.stats()
        rtt_paid = sum(c.rtt_paid_s for c in pipeline.scheduler.collectors)
        rtt_paid += sum(s.rtt_paid_s for s in pipeline.tsdb.shards)
        return {
            "workers": int(workers),
            "steps": int(n_steps),
            "wall_s": wall,
            "steps_per_s": n_steps / wall if wall > 0 else float("inf"),
            "samples": int(stats.samples),
            "rtt_paid_s": rtt_paid,
            "executor": pipeline.executor.snapshot(),
        }
    finally:
        pipeline.executor.shutdown()


def sweep_workers(
    worker_counts=(1, 2, 4),
    n_steps: int = 20,
    **build_kw,
) -> list[dict]:
    """Measure each worker count; ``speedup`` is relative to the first
    (serial) arm."""
    rows = [measure_workers(w, n_steps=n_steps, **build_kw)
            for w in worker_counts]
    base = rows[0]["wall_s"]
    for row in rows:
        row["speedup"] = base / row["wall_s"] if row["wall_s"] else 0.0
    return rows
