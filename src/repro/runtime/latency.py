"""Simulated remote-I/O latency: what a parallel runtime overlaps.

The paper's planes are distributed daemons whose dominant cost is
*waiting* — a scrape RTT to every node daemon, a write RTT to every
store shard — not local compute.  In-process, that waiting has to be
modelled explicitly or the parallel runtime has nothing real to
overlap.  :class:`RemoteFleetCollector` and :class:`LatentStore` put a
wall-clock ``time.sleep`` (which releases the GIL, exactly like real
socket I/O) on those two edges, so the scaling benchmark measures the
latency-hiding a threaded execution model actually buys on this
hardware.  Simulated *machine* time is untouched: RTTs burn wall time
in the measuring process only, never advance the monitoring clock.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

import numpy as np

from ..sources.base import Collector, CollectorOutput
from ..core.metric import SeriesBatch

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.machine import Machine

__all__ = ["LatentStore", "RemoteFleetCollector"]


class RemoteFleetCollector(Collector):
    """A collector fronting one fleet slice of remote node daemons.

    Each sweep pays one scrape round-trip (``rtt_s`` of GIL-releasing
    wall sleep) and returns a synchronized batch of ``n_components``
    samples.  Values are a deterministic function of (component index,
    sweep count), so two runs — serial or parallel — produce identical
    batches.  Component names are built once: the same object array is
    republished every sweep, which is also what lets the sharded
    store's routing memo behave as it would under a real synchronized
    sweep.
    """

    metrics = ("node.power_w",)

    def __init__(
        self,
        name: str,
        interval_s: float,
        n_components: int,
        rtt_s: float = 0.005,
        first_component: int = 0,
    ) -> None:
        super().__init__(name, interval_s)
        self.rtt_s = float(rtt_s)
        self.rtt_paid_s = 0.0
        self.components = np.array(
            [f"node-{first_component + i:05d}" for i in range(n_components)],
            dtype=object,
        )
        self._indices = np.arange(n_components, dtype=np.float64)

    def collect(self, machine: "Machine", now: float) -> CollectorOutput:
        if self.rtt_s > 0.0:
            time.sleep(self.rtt_s)      # the scrape RTT; releases the GIL
            self.rtt_paid_s += self.rtt_s
        values = 100.0 + (self._indices % 7.0) + float(self.sweeps % 5)
        times = np.full(len(self.components), now)
        return CollectorOutput(
            batches=[SeriesBatch("node.power_w", self.components,
                                 times, values)]
        )


class LatentStore:
    """A store shard behind a per-append write round-trip.

    Wraps any store-like object: ``append`` sleeps ``rtt_s`` of wall
    time (GIL released) before delegating, every other attribute
    proxies straight through — so a
    :class:`~repro.storage.sharded.ShardedTimeSeriesStore` built over
    ``LatentStore(TimeSeriesStore(), ...)`` shards behaves like K
    remote stores one write-RTT away.
    """

    def __init__(self, inner, rtt_s: float = 0.005) -> None:
        self._inner = inner
        self.rtt_s = float(rtt_s)
        self.rtt_paid_s = 0.0

    def append(self, batch) -> int:
        if self.rtt_s > 0.0:
            time.sleep(self.rtt_s)      # the write RTT; releases the GIL
            self.rtt_paid_s += self.rtt_s
        return self._inner.append(batch)

    def __getattr__(self, name):
        return getattr(self._inner, name)
