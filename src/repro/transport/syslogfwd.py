"""Syslog-style push forwarding with loss under bursts.

Section IV-B: "the only standard is use of some version of syslog for
transport of log (e.g., error and event) messages."  Syslog is
fire-and-forget over a rate-limited path; during event storms (the same
storms that blow up Splunk indexing costs) messages are dropped.  The
forwarder models a token-bucket rate limit with a bounded retry buffer
so the transport-comparison bench can quantify loss versus the bus and
the LDMS tree.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Sequence

from ..core.events import Event

__all__ = ["SyslogForwarder", "ForwarderStats"]


@dataclass(frozen=True, slots=True)
class ForwarderStats:
    offered: int
    forwarded: int
    dropped: int
    retried: int

    @property
    def loss_rate(self) -> float:
        return self.dropped / self.offered if self.offered else 0.0


class SyslogForwarder:
    """Token-bucket rate-limited event forwarding with bounded retries."""

    def __init__(
        self,
        sink: Callable[[Event], None],
        rate_per_s: float = 1000.0,
        burst: int = 200,
        retry_buffer: int = 500,
    ) -> None:
        self.sink = sink
        self.rate_per_s = float(rate_per_s)
        self.burst = int(burst)
        self._tokens = float(burst)
        self._retry: deque[Event] = deque(maxlen=retry_buffer)
        self._offered = 0
        self._forwarded = 0
        self._dropped = 0
        self._retried = 0
        self._last_time: float | None = None

    def _refill(self, now: float) -> None:
        if self._last_time is not None:
            self._tokens = min(
                self.burst,
                self._tokens + (now - self._last_time) * self.rate_per_s,
            )
        self._last_time = now

    def forward(self, now: float, events: Sequence[Event]) -> int:
        """Offer events at time ``now``; returns how many got through.

        Retry-buffered events from previous bursts go first (oldest
        first); whatever exceeds both the rate and the retry buffer is
        dropped, counted, and gone — like real UDP syslog.
        """
        self._refill(now)
        sent = 0

        # drain retries first
        while self._retry and self._tokens >= 1.0:
            ev = self._retry.popleft()
            self.sink(ev)
            self._tokens -= 1.0
            self._forwarded += 1
            self._retried += 1
            sent += 1

        for ev in events:
            self._offered += 1
            if self._tokens >= 1.0:
                self.sink(ev)
                self._tokens -= 1.0
                self._forwarded += 1
                sent += 1
            else:
                if len(self._retry) == self._retry.maxlen:
                    self._dropped += 1      # buffer full: message lost
                else:
                    self._retry.append(ev)
        return sent

    def pending(self) -> int:
        return len(self._retry)

    def stats(self) -> ForwarderStats:
        return ForwarderStats(
            offered=self._offered,
            forwarded=self._forwarded,
            dropped=self._dropped,
            retried=self._retried,
        )
