"""Message envelopes and wire formats.

Section IV-B observes that sites juggle a "plethora of available data
transport and related storage mechanisms", and Table I asks for "tools
to transport and store the data in native format".  We define one
envelope with two wire encodings:

* JSON lines — the interoperable, debuggable format sites forward
  between tools;
* a compact binary frame — the "proprietary binary format" class
  (Cray ERD-style), which the Deluge-like decoder in
  :mod:`repro.sources.erd` turns back into native events.

Both encodings round-trip :class:`~repro.core.metric.SeriesBatch` and
:class:`~repro.core.events.Event` payloads without loss.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass

import numpy as np

from ..core.events import Event, EventKind, Severity
from ..core.metric import SeriesBatch
from ..core.tracectx import TraceContext

__all__ = [
    "Envelope",
    "encode_json",
    "decode_json",
    "encode_binary",
    "decode_binary",
]


@dataclass(frozen=True, slots=True)
class Envelope:
    """One transported message: a topic plus a typed payload."""

    topic: str
    payload: SeriesBatch | Event | dict
    source: str = ""
    seq: int = 0

    @property
    def trace(self) -> TraceContext | None:
        """Trace context of a traced batch payload, else None."""
        return getattr(self.payload, "trace", None)


def _payload_to_obj(payload: SeriesBatch | Event | dict) -> dict:
    if isinstance(payload, SeriesBatch):
        obj = {
            "type": "batch",
            "metric": payload.metric,
            "components": [str(c) for c in payload.components],
            "times": payload.times.tolist(),
            "values": [
                None if not np.isfinite(v) else float(v)
                for v in payload.values
            ],
        }
        if payload.trace is not None:
            obj["trace"] = payload.trace.to_obj()
        return obj
    if isinstance(payload, Event):
        return {
            "type": "event",
            "time": payload.time,
            "component": payload.component,
            "kind": payload.kind.value,
            "severity": int(payload.severity),
            "message": payload.message,
            "fields": dict(payload.fields),
        }
    return {"type": "dict", "data": payload}


def _obj_to_payload(obj: dict) -> SeriesBatch | Event | dict:
    t = obj["type"]
    if t == "batch":
        values = [
            float("nan") if v is None else v for v in obj["values"]
        ]
        return SeriesBatch(
            obj["metric"], obj["components"], obj["times"], values,
            trace=TraceContext.from_obj(obj.get("trace")),
        )
    if t == "event":
        return Event(
            time=obj["time"],
            component=obj["component"],
            kind=EventKind(obj["kind"]),
            severity=Severity(obj["severity"]),
            message=obj["message"],
            fields=obj["fields"],
        )
    if t == "dict":
        return obj["data"]
    raise ValueError(f"unknown payload type {t!r}")


def encode_json(env: Envelope) -> str:
    """Envelope -> one JSON line."""
    return json.dumps(
        {
            "topic": env.topic,
            "source": env.source,
            "seq": env.seq,
            "payload": _payload_to_obj(env.payload),
        },
        separators=(",", ":"),
    )


def decode_json(line: str) -> Envelope:
    obj = json.loads(line)
    return Envelope(
        topic=obj["topic"],
        payload=_obj_to_payload(obj["payload"]),
        source=obj.get("source", ""),
        seq=obj.get("seq", 0),
    )


_MAGIC = b"ERD1"


def encode_binary(env: Envelope) -> bytes:
    """Envelope -> length-prefixed binary frame (ERD-style opaque wire).

    Layout: magic, u32 total length, u16 topic length, topic bytes,
    u16 source length, source bytes, u32 seq, JSON-encoded payload.
    Opaque to anyone without the decoder — which is the paper's point
    about vendor binary formats.
    """
    topic = env.topic.encode()
    source = env.source.encode()
    body = json.dumps(_payload_to_obj(env.payload),
                      separators=(",", ":")).encode()
    frame = (
        struct.pack("<H", len(topic))
        + topic
        + struct.pack("<H", len(source))
        + source
        + struct.pack("<I", env.seq)
        + body
    )
    return _MAGIC + struct.pack("<I", len(frame)) + frame


def decode_binary(blob: bytes) -> tuple[Envelope, bytes]:
    """Decode one frame; returns (envelope, remaining bytes)."""
    if blob[:4] != _MAGIC:
        raise ValueError("bad magic: not an ERD frame")
    (total,) = struct.unpack_from("<I", blob, 4)
    frame = blob[8 : 8 + total]
    rest = blob[8 + total :]
    (tlen,) = struct.unpack_from("<H", frame, 0)
    pos = 2
    topic = frame[pos : pos + tlen].decode()
    pos += tlen
    (slen,) = struct.unpack_from("<H", frame, pos)
    pos += 2
    source = frame[pos : pos + slen].decode()
    pos += slen
    (seq,) = struct.unpack_from("<I", frame, pos)
    pos += 4
    payload = _obj_to_payload(json.loads(frame[pos:].decode()))
    return Envelope(topic, payload, source, seq), rest
