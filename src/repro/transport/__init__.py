"""Data transport: pub/sub bus, LDMS-style pull tree, syslog forwarding."""

from .bus import BusStats, MessageBus, Subscription
from .ldms import Aggregator, Sampler, TreeStats, build_tree
from .message import (
    Envelope,
    decode_binary,
    decode_json,
    encode_binary,
    encode_json,
)
from .syslogfwd import ForwarderStats, SyslogForwarder

__all__ = [
    "BusStats",
    "MessageBus",
    "Subscription",
    "Aggregator",
    "Sampler",
    "TreeStats",
    "build_tree",
    "Envelope",
    "decode_binary",
    "decode_json",
    "encode_binary",
    "encode_json",
    "ForwarderStats",
    "SyslogForwarder",
]
