"""Data transport: pluggable tiers from flat bus to aggregator tree.

Every mover implements :class:`~repro.transport.base.Transport`:
``MessageBus`` (flat synchronous fan-out, the RabbitMQ class),
``PartitionedBus`` (topic-hash partitions with bounded lanes, the
Kafka class), and ``AggregatorTree`` (LDMS-style multi-level
coalescing fan-in).  The LDMS pull-tree *model* (samplers pulled on a
schedule) lives in :mod:`repro.transport.ldms`; syslog forwarding with
storm loss in :mod:`repro.transport.syslogfwd`.
"""

from .aggtree import AggregatorTree, TreeTransportStats
from .base import (
    BusStats,
    MatchCacheInfo,
    PatternMatcher,
    Subscription,
    Transport,
    make_transport,
)
from .bus import MessageBus
from .ldms import Aggregator, Sampler, TreeStats, build_tree
from .message import (
    Envelope,
    decode_binary,
    decode_json,
    encode_binary,
    encode_json,
)
from .partitioned import PartitionedBus, PartitionedBusStats
from .syslogfwd import ForwarderStats, SyslogForwarder

__all__ = [
    "AggregatorTree",
    "TreeTransportStats",
    "BusStats",
    "MatchCacheInfo",
    "PatternMatcher",
    "Subscription",
    "Transport",
    "make_transport",
    "MessageBus",
    "PartitionedBus",
    "PartitionedBusStats",
    "Aggregator",
    "Sampler",
    "TreeStats",
    "build_tree",
    "Envelope",
    "decode_binary",
    "decode_json",
    "encode_binary",
    "encode_json",
    "ForwarderStats",
    "SyslogForwarder",
]
