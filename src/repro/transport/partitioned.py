"""Partitioned pub/sub transport (the Kafka class).

CSC runs a Kafka-style partitioned log in front of its stores: a flat
broker stops scaling when every publish contends on one router, so the
topic space is hashed into partitions, each an independent bounded
queue with its own backpressure accounting.  :class:`PartitionedBus`
models that tier: ``publish`` only appends to the owning partition
(stable topic hash, so a topic's messages always traverse the same
partition and stay FIFO); delivery to subscribers happens when the
pipeline :meth:`pump`\\ s the bus at stage boundaries.  Per-partition
queues are bounded with drop-oldest overflow and per-partition drop
counters, so a storm on one topic family saturates *its* partition
while the others keep flowing — visible in ``selfmon.bus.partition_depth``
and ``selfmon.bus.partition_dropped``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from ..core.hashing import stable_bucket
from ..core.metric import SeriesBatch
from ..core.tracectx import HOP_ENQUEUE, HOP_PUMP
from .base import BusStats, PatternMatcher, Subscription, Transport
from .message import Envelope

__all__ = ["PartitionedBus", "PartitionedBusStats"]


@dataclass(frozen=True, slots=True)
class PartitionedBusStats(BusStats):
    """BusStats plus the per-partition loss/backlog breakdown."""

    partitions: int = 0
    partition_dropped: tuple[int, ...] = ()
    partition_depths: tuple[int, ...] = ()


class _Partition:
    """One bounded FIFO of undelivered envelopes."""

    __slots__ = ("queue", "maxlen", "dropped", "enqueued")

    def __init__(self, maxlen: int) -> None:
        self.queue: deque[Envelope] = deque()
        self.maxlen = maxlen
        self.dropped = 0
        self.enqueued = 0

    def offer(self, env: Envelope) -> Envelope | None:
        """Enqueue; returns the evicted envelope when drop-oldest fires
        (so the caller can account the loss), else None."""
        evicted = None
        if len(self.queue) >= self.maxlen:
            evicted = self.queue.popleft()   # drop-oldest under storm
            self.dropped += 1
        self.queue.append(env)
        self.enqueued += 1
        return evicted


class PartitionedBus(Transport):
    """N independent partitions by topic hash, delivered on ``pump``."""

    def __init__(
        self,
        partitions: int = 4,
        partition_queue_len: int = 100_000,
        default_queue_len: int = 10_000,
        match_cache_size: int = 4096,
    ) -> None:
        if partitions < 1:
            raise ValueError("partitions must be >= 1")
        self.n_partitions = int(partitions)
        self.default_queue_len = int(default_queue_len)
        self._parts = [
            _Partition(int(partition_queue_len))
            for _ in range(self.n_partitions)
        ]
        self._subs: list[Subscription] = []
        self._matcher = PatternMatcher(match_cache_size)
        self._published = 0
        self._delivered = 0
        self._seq = 0

    # -- routing ------------------------------------------------------------

    def partition_of(self, topic: str) -> int:
        """Stable topic -> partition mapping (same topic, same lane)."""
        return stable_bucket(topic, self.n_partitions)

    # -- Transport surface --------------------------------------------------

    def subscribe(
        self,
        pattern: str,
        callback: Callable[[Envelope], None] | None = None,
        maxlen: int | None = None,
        name: str = "",
    ) -> Subscription:
        """Register a consumer; patterns may span partitions (a wildcard
        such as ``metrics.*`` sees matching envelopes from every lane)."""
        sub = Subscription(
            pattern,
            maxlen if maxlen is not None else self.default_queue_len,
            callback,
            name,
        )
        self._subs.append(sub)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        self._subs.remove(sub)

    def publish(self, topic: str, payload, source: str = "") -> int:
        """Append to the owning partition; delivery waits for ``pump``.

        Returns 0: no consumer has been reached yet.  An envelope that
        overflows the partition evicts the oldest one there (counted in
        that partition's ``dropped``).
        """
        self._seq += 1
        env = Envelope(topic=topic, payload=payload, source=source,
                       seq=self._seq)
        self._published += 1
        ledger = self.ledger
        tracked = (ledger is not None and isinstance(payload, SeriesBatch)
                   and ledger.tracks(topic))
        if tracked:
            ledger.published_batch(source, payload)
        if (self.clock is not None and isinstance(payload, SeriesBatch)
                and payload.trace is not None):
            payload.trace.stamp(HOP_ENQUEUE, self.clock())
        evicted = self._parts[self.partition_of(topic)].offer(env)
        if (evicted is not None and ledger is not None
                and isinstance(evicted.payload, SeriesBatch)
                and ledger.tracks(evicted.topic)):
            ledger.lost_batch("partition-overflow", evicted.payload)
        return 0

    def pump(self, now: float | None = None) -> int:
        """Drain every partition in order, fanning out to subscribers."""
        moved = 0
        matches = self._matcher.matches
        t = self._hop_time(now)
        for part in self._parts:
            queue = part.queue
            while queue:
                env = queue.popleft()
                if t is not None and env.trace is not None:
                    env.trace.stamp(HOP_PUMP, t)
                hits = 0
                for sub in self._subs:
                    if matches(env.topic, sub.pattern) and sub.offer(env):
                        hits += 1
                self._delivered += hits
                moved += 1
        return moved

    def in_flight_points(self) -> int:
        """Tracked points sitting in partition queues awaiting pump."""
        ledger = self.ledger
        if ledger is None:
            return 0
        total = 0
        for part in self._parts:
            for env in part.queue:
                if (isinstance(env.payload, SeriesBatch)
                        and ledger.tracks(env.topic)):
                    total += len(env.payload)
        return total

    # -- self-monitoring surfaces -------------------------------------------

    def partition_depths(self) -> dict[str, int]:
        """Undelivered backlog per partition."""
        return {
            f"partition-{i}": len(p.queue)
            for i, p in enumerate(self._parts)
        }

    def partition_drops(self) -> dict[str, int]:
        """Cumulative drop-oldest evictions per partition."""
        return {
            f"partition-{i}": p.dropped
            for i, p in enumerate(self._parts)
        }

    def queue_depths(self) -> dict[str, int]:
        """Partition backlogs plus per-subscription queue depths."""
        depths: dict[str, int] = self.partition_depths()
        for i, sub in enumerate(self._subs):
            key = sub.name
            if key in depths:
                key = f"{key}#{i}"
            depths[key] = len(sub)
        return depths

    def stats(self) -> PartitionedBusStats:
        part_dropped = sum(p.dropped for p in self._parts)
        return PartitionedBusStats(
            published=self._published,
            delivered=self._delivered,
            dropped=part_dropped + sum(s.dropped for s in self._subs),
            subscriptions=len(self._subs),
            errors=sum(s.errors for s in self._subs),
            queue_depths=self.queue_depths(),
            partitions=self.n_partitions,
            partition_dropped=tuple(p.dropped for p in self._parts),
            partition_depths=tuple(len(p.queue) for p in self._parts),
        )
