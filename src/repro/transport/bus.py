"""In-process pub/sub message bus (the AMQP/RabbitMQ class).

NERSC's infrastructure "includes a message queuing system (RabbitMQ)"
fanning data from many producers to many consumers.  Table I
(*Architecture*): "We will need to direct the data and analysis results
to multiple consumers" with "multiple flexible data paths ... easily
configured and changed".

This bus is the flat (single-broker) :class:`~repro.transport.base.Transport`:
topic-based routing with ``*`` wildcards, per-consumer bounded queues
with a drop-oldest overflow policy (backpressure during event storms is
exactly the Splunk-cost scenario the paper mentions), synchronous
delivery inside ``publish``, and delivery statistics the
transport-comparison bench and the self-monitoring plane read.  A
raising subscriber callback never aborts the fan-out: the exception is
isolated, counted on the subscription, and delivery continues to the
remaining consumers.  Topic/pattern matching is memoized through a
bounded :class:`~repro.transport.base.PatternMatcher` — the same
(topic, pattern) pairs recur on every publish, so the glob evaluation
happens once per pair, not once per message.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.core.metric import SeriesBatch
from repro.core.tracectx import HOP_PUBLISH, MAX_HOPS

from .base import (
    BusStats,
    MatchCacheInfo,
    PatternMatcher,
    Subscription,
    Transport,
)
from .message import Envelope

__all__ = ["Subscription", "MessageBus", "BusStats"]


class MessageBus(Transport):
    """Topic router with wildcard subscriptions and synchronous fan-out."""

    def __init__(
        self,
        default_queue_len: int = 10_000,
        match_cache_size: int = 4096,
    ) -> None:
        self.default_queue_len = int(default_queue_len)
        self._subs: list[Subscription] = []
        self._matcher = PatternMatcher(match_cache_size)
        self._published = 0
        self._delivered = 0
        self._seq = 0

    def subscribe(
        self,
        pattern: str,
        callback: Callable[[Envelope], None] | None = None,
        maxlen: int | None = None,
        name: str = "",
    ) -> Subscription:
        """Register a consumer; ``pattern`` supports ``*`` wildcards
        (``metrics.*``, ``events.hwerr``).  With a callback, delivery is
        synchronous; without, messages land in the subscription queue."""
        sub = Subscription(
            pattern,
            maxlen if maxlen is not None else self.default_queue_len,
            callback,
            name,
        )
        self._subs.append(sub)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        self._subs.remove(sub)

    def publish(self, topic: str, payload, source: str = "") -> int:
        """Publish one payload; returns the number of consumers reached.

        Every matching subscriber is offered the envelope even when an
        earlier subscriber's callback raises (the raise is isolated and
        counted in that subscription's ``errors``).
        """
        self._seq += 1
        env = Envelope(topic=topic, payload=payload, source=source,
                       seq=self._seq)
        self._published += 1
        ledger = self.ledger
        if (ledger is not None and isinstance(payload, SeriesBatch)
                and ledger.tracks(topic)):
            ledger.published_batch(source, payload)
        if self.clock is not None and isinstance(payload, SeriesBatch):
            tr = payload.trace
            if tr is not None:
                # inlined TraceContext.stamp(HOP_PUBLISH, ...) — this is
                # the per-batch hot path; see stamp() for the semantics
                hops = tr.hops
                t = self.clock()
                if hops and hops[-1][0] == HOP_PUBLISH:
                    last = hops[-1]
                    if t < last[1]:
                        last[1] = t
                    if t > last[2]:
                        last[2] = t
                elif len(hops) < MAX_HOPS:
                    hops.append([HOP_PUBLISH, t, t, 1])
                else:
                    tr.truncated += 1
        hits = 0
        matches = self._matcher.matches
        for sub in self._subs:
            if matches(topic, sub.pattern) and sub.offer(env):
                hits += 1
        self._delivered += hits
        return hits

    def publish_many(self, topic: str, payloads: Iterable, source: str = "") -> int:
        return sum(self.publish(topic, p, source) for p in payloads)

    def match_cache_info(self) -> MatchCacheInfo:
        """Hit/miss accounting of the memoized topic/pattern matcher."""
        return self._matcher.info()

    def queue_depths(self) -> dict[str, int]:
        """Current backlog per subscription (self-monitoring surface).

        Subscriptions sharing a name (e.g. two bare-pattern subscribers)
        are disambiguated with a ``#i`` suffix so no depth is shadowed.
        """
        depths: dict[str, int] = {}
        for i, sub in enumerate(self._subs):
            key = sub.name
            if key in depths:
                key = f"{key}#{i}"
            depths[key] = len(sub)
        return depths

    def stats(self) -> BusStats:
        return BusStats(
            published=self._published,
            delivered=self._delivered,
            dropped=sum(s.dropped for s in self._subs),
            subscriptions=len(self._subs),
            errors=sum(s.errors for s in self._subs),
            queue_depths=self.queue_depths(),
        )
