"""In-process pub/sub message bus (the AMQP/RabbitMQ class).

NERSC's infrastructure "includes a message queuing system (RabbitMQ)"
fanning data from many producers to many consumers.  Table I
(*Architecture*): "We will need to direct the data and analysis results
to multiple consumers" with "multiple flexible data paths ... easily
configured and changed".

This bus provides topic-based routing with ``*`` wildcards, per-consumer
bounded queues with a drop-oldest overflow policy (backpressure during
event storms is exactly the Splunk-cost scenario the paper mentions),
and delivery statistics the transport-comparison bench and the
self-monitoring plane read.  A raising subscriber callback never aborts
the fan-out: the exception is isolated, counted on the subscription,
and delivery continues to the remaining consumers.
"""

from __future__ import annotations

import fnmatch
import logging
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable

from .message import Envelope

__all__ = ["Subscription", "MessageBus", "BusStats"]

_log = logging.getLogger(__name__)


@dataclass(frozen=True, slots=True)
class BusStats:
    published: int
    delivered: int
    dropped: int
    subscriptions: int
    errors: int = 0
    queue_depths: dict[str, int] = field(default_factory=dict)


class Subscription:
    """One consumer's bounded queue over a topic pattern."""

    def __init__(
        self,
        pattern: str,
        maxlen: int,
        callback: Callable[[Envelope], None] | None = None,
        name: str = "",
    ) -> None:
        self.pattern = pattern
        self.name = name or pattern
        self.callback = callback
        self._queue: deque[Envelope] = deque()
        self.maxlen = maxlen
        self.received = 0
        self.dropped = 0
        self.errors = 0
        self.last_error: BaseException | None = None

    def matches(self, topic: str) -> bool:
        return fnmatch.fnmatchcase(topic, self.pattern)

    def offer(self, env: Envelope) -> bool:
        """Deliver one envelope; returns True on successful hand-off.

        A raising callback is isolated here — counted in ``errors``,
        logged, and reported as a failed delivery — so one misbehaving
        consumer cannot starve the rest of the fan-out.
        """
        if self.callback is not None:
            try:
                self.callback(env)
            except Exception as exc:
                self.errors += 1
                self.last_error = exc
                _log.warning(
                    "subscriber %r raised on topic %r: %r",
                    self.name, env.topic, exc,
                )
                return False
            self.received += 1
            return True
        if len(self._queue) >= self.maxlen:
            self._queue.popleft()      # drop-oldest under storm
            self.dropped += 1
        self._queue.append(env)
        self.received += 1
        return True

    def drain(self, max_items: int | None = None) -> list[Envelope]:
        """Pull queued messages (consumer-paced pull path)."""
        out: list[Envelope] = []
        while self._queue and (max_items is None or len(out) < max_items):
            out.append(self._queue.popleft())
        return out

    def __len__(self) -> int:
        return len(self._queue)


class MessageBus:
    """Topic router with wildcard subscriptions."""

    def __init__(self, default_queue_len: int = 10_000) -> None:
        self.default_queue_len = int(default_queue_len)
        self._subs: list[Subscription] = []
        self._published = 0
        self._delivered = 0
        self._seq = 0

    def subscribe(
        self,
        pattern: str,
        callback: Callable[[Envelope], None] | None = None,
        maxlen: int | None = None,
        name: str = "",
    ) -> Subscription:
        """Register a consumer; ``pattern`` supports ``*`` wildcards
        (``metrics.*``, ``events.hwerr``).  With a callback, delivery is
        synchronous; without, messages land in the subscription queue."""
        sub = Subscription(
            pattern,
            maxlen if maxlen is not None else self.default_queue_len,
            callback,
            name,
        )
        self._subs.append(sub)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        self._subs.remove(sub)

    def publish(self, topic: str, payload, source: str = "") -> int:
        """Publish one payload; returns the number of consumers reached.

        Every matching subscriber is offered the envelope even when an
        earlier subscriber's callback raises (the raise is isolated and
        counted in that subscription's ``errors``).
        """
        self._seq += 1
        env = Envelope(topic=topic, payload=payload, source=source,
                       seq=self._seq)
        self._published += 1
        hits = 0
        for sub in self._subs:
            if sub.matches(topic) and sub.offer(env):
                hits += 1
        self._delivered += hits
        return hits

    def publish_many(self, topic: str, payloads: Iterable, source: str = "") -> int:
        return sum(self.publish(topic, p, source) for p in payloads)

    def queue_depths(self) -> dict[str, int]:
        """Current backlog per subscription (self-monitoring surface).

        Subscriptions sharing a name (e.g. two bare-pattern subscribers)
        are disambiguated with a ``#i`` suffix so no depth is shadowed.
        """
        depths: dict[str, int] = {}
        for i, sub in enumerate(self._subs):
            key = sub.name
            if key in depths:
                key = f"{key}#{i}"
            depths[key] = len(sub)
        return depths

    def stats(self) -> BusStats:
        return BusStats(
            published=self._published,
            delivered=self._delivered,
            dropped=sum(s.dropped for s in self._subs),
            subscriptions=len(self._subs),
            errors=sum(s.errors for s in self._subs),
            queue_depths=self.queue_depths(),
        )
