"""The pluggable transport interface every data mover implements.

Section IV-B of the paper: sites run "a variety of transport
mechanisms" — flat brokers (RabbitMQ at NERSC), partitioned logs
(Kafka at CSC), and LDMS aggregator trees (LANL/NCSA/SNL) — and
"multiple transports may in some cases be necessary and even
desirable".  :class:`Transport` is the contract that lets one pipeline
run over any of them: :class:`~repro.transport.bus.MessageBus` (flat
fan-out), :class:`~repro.transport.partitioned.PartitionedBus`
(topic-hash partitions with bounded queues), and
:class:`~repro.transport.aggtree.AggregatorTree` (multi-level fan-in
with batch coalescing).

The shared pieces live here too: :class:`Subscription` (one consumer's
bounded queue over a topic pattern), :class:`BusStats` (the common
stats surface the self-monitoring plane reads), and
:class:`PatternMatcher` (memoized topic/pattern matching — ``fnmatch``
on every publish is the flat bus's hottest line, and (topic, pattern)
pairs recur endlessly).
"""

from __future__ import annotations

import abc
import fnmatch
import logging
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable

from .message import Envelope

__all__ = [
    "BusStats",
    "MatchCacheInfo",
    "PatternMatcher",
    "Subscription",
    "Transport",
    "make_transport",
]

_log = logging.getLogger(__name__)


@dataclass(frozen=True, slots=True)
class BusStats:
    """Delivery accounting every transport exposes (selfmon surface)."""

    published: int
    delivered: int
    dropped: int
    subscriptions: int
    errors: int = 0
    queue_depths: dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class MatchCacheInfo:
    hits: int
    misses: int
    size: int


class PatternMatcher:
    """Bounded memo cache over ``fnmatch`` topic/pattern matching.

    Topic and pattern vocabularies are small and recur on every publish
    (a few dozen metric topics against a handful of subscriptions), so
    a dict lookup replaces a glob evaluation on the hot path.  The
    cache is bounded: at capacity it is cleared wholesale, which keeps
    the common steady-state (far fewer pairs than ``max_entries``)
    at zero eviction cost while bounding pathological topic churn.
    ``max_entries=0`` disables memoization entirely.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        self.max_entries = int(max_entries)
        self._cache: dict[tuple[str, str], bool] = {}
        self.hits = 0
        self.misses = 0

    def matches(self, topic: str, pattern: str) -> bool:
        if self.max_entries <= 0:
            return fnmatch.fnmatchcase(topic, pattern)
        key = (topic, pattern)
        hit = self._cache.get(key)
        if hit is not None:
            self.hits += 1
            return hit
        self.misses += 1
        result = fnmatch.fnmatchcase(topic, pattern)
        if len(self._cache) >= self.max_entries:
            self._cache.clear()
        self._cache[key] = result
        return result

    def info(self) -> MatchCacheInfo:
        return MatchCacheInfo(self.hits, self.misses, len(self._cache))


class Subscription:
    """One consumer's bounded queue over a topic pattern."""

    def __init__(
        self,
        pattern: str,
        maxlen: int,
        callback: Callable[[Envelope], None] | None = None,
        name: str = "",
    ) -> None:
        self.pattern = pattern
        self.name = name or pattern
        self.callback = callback
        self._queue: deque[Envelope] = deque()
        self.maxlen = maxlen
        self.received = 0
        self.dropped = 0
        self.errors = 0
        self.last_error: BaseException | None = None

    def matches(self, topic: str) -> bool:
        return fnmatch.fnmatchcase(topic, self.pattern)

    def offer(self, env: Envelope) -> bool:
        """Deliver one envelope; returns True on successful hand-off.

        A raising callback is isolated here — counted in ``errors``,
        logged, and reported as a failed delivery — so one misbehaving
        consumer cannot starve the rest of the fan-out.
        """
        if self.callback is not None:
            try:
                self.callback(env)
            except Exception as exc:
                self.errors += 1
                self.last_error = exc
                _log.warning(
                    "subscriber %r raised on topic %r: %r",
                    self.name, env.topic, exc,
                )
                return False
            self.received += 1
            return True
        if len(self._queue) >= self.maxlen:
            self._queue.popleft()      # drop-oldest under storm
            self.dropped += 1
        self._queue.append(env)
        self.received += 1
        return True

    def drain(self, max_items: int | None = None) -> list[Envelope]:
        """Pull queued messages (consumer-paced pull path)."""
        out: list[Envelope] = []
        while self._queue and (max_items is None or len(out) < max_items):
            out.append(self._queue.popleft())
        return out

    def __len__(self) -> int:
        return len(self._queue)


class Transport(abc.ABC):
    """Abstract data mover: publish/subscribe plus delivery accounting.

    Implementations differ in *when* delivery happens: the flat
    :class:`~repro.transport.bus.MessageBus` delivers synchronously
    inside ``publish``; the partitioned bus and the aggregator tree
    accept envelopes immediately and deliver on :meth:`pump` (called by
    the pipeline at stage boundaries) or :meth:`flush` (force
    everything out, e.g. at end of run).  Consumers never care: they
    subscribe once and see the same envelopes either way.

    When :attr:`ledger` is attached, implementations stamp every
    tracked :class:`~repro.core.metric.SeriesBatch` as ``published`` at
    the publish edge and every internal drop as accounted loss, so the
    ledger's balance identity holds exactly (see
    :mod:`repro.core.ledger`).
    """

    #: optional DeliveryLedger; attached by the pipeline, stamped by
    #: each implementation at its publish edge and loss sites
    ledger = None

    #: optional zero-arg simulated-clock callable; when attached (by the
    #: pipeline, when freshness tracing is on), implementations stamp
    #: each traced batch's TraceContext at their hop edges
    clock = None

    #: optional ExecutionModel; attached by the pipeline when it runs a
    #: parallel executor, so transports with internally data-parallel
    #: work (aggregator-tree leaf coalescing) can fan it out between
    #: their own pump barriers.  Implementations must treat it as
    #: compute-only: publish/deliver stays on the pumping thread.
    executor = None

    def _hop_time(self, now: float | None = None) -> float | None:
        """Time to stamp a hop with: ``now`` when the caller supplies it
        (pump), else the attached clock, else None (tracing off)."""
        if now is not None:
            return now
        clock = self.clock
        return clock() if clock is not None else None

    def in_flight_points(self) -> int:
        """Points buffered inside the transport awaiting delivery
        (partition queues, coalescing windows).  Synchronous transports
        hold nothing between calls."""
        return 0

    @abc.abstractmethod
    def subscribe(
        self,
        pattern: str,
        callback: Callable[[Envelope], None] | None = None,
        maxlen: int | None = None,
        name: str = "",
    ) -> Subscription:
        """Register a consumer over a ``*``-wildcard topic pattern."""

    @abc.abstractmethod
    def unsubscribe(self, sub: Subscription) -> None:
        """Remove a consumer registered with :meth:`subscribe`."""

    @abc.abstractmethod
    def publish(self, topic: str, payload, source: str = "") -> int:
        """Accept one payload for delivery; returns consumers reached
        so far (deferred transports report 0 until :meth:`pump`)."""

    @abc.abstractmethod
    def stats(self) -> BusStats:
        """Aggregate delivery accounting (self-monitoring surface)."""

    @abc.abstractmethod
    def queue_depths(self) -> dict[str, int]:
        """Current backlog per internal queue (self-monitoring surface)."""

    def publish_many(self, topic: str, payloads: Iterable,
                     source: str = "") -> int:
        return sum(self.publish(topic, p, source) for p in payloads)

    def pump(self, now: float | None = None) -> int:
        """Deliver whatever is due at ``now``; returns envelopes moved.

        Synchronous transports have nothing pending — the default is a
        no-op.  Deferred transports drain their internal queues here.
        """
        return 0

    def flush(self) -> int:
        """Force every buffered envelope out (checkpoint / end of run)."""
        return self.pump(None)


def make_transport(spec, **options) -> "Transport":
    """Resolve a transport knob: an instance passes through, a name
    (``"flat"``, ``"partitioned"``, ``"tree"``) builds the matching
    implementation with ``options`` forwarded to its constructor."""
    if isinstance(spec, Transport):
        return spec
    from .aggtree import AggregatorTree
    from .bus import MessageBus
    from .partitioned import PartitionedBus
    builders = {
        "flat": MessageBus,
        "bus": MessageBus,
        "partitioned": PartitionedBus,
        "tree": AggregatorTree,
    }
    try:
        builder = builders[spec]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown transport {spec!r}; pass a Transport instance or "
            f"one of {sorted(set(builders))}"
        ) from None
    return builder(**options)
