"""LDMS-style pull aggregation tree.

SNL's Lightweight Distributed Metric Service [18] is the custom-built
transport the paper lists: samplers on every node expose metric sets;
aggregator daemons *pull* from a fan-in tree of children at a fixed
interval, so collection is synchronized and overhead is bounded and
predictable rather than bursty.

We model samplers as callables producing
:class:`~repro.core.metric.SeriesBatch` lists, first-level aggregators
pulling from a configurable fan-in of samplers, and higher levels
pulling from child aggregators, with per-pull accounting (batches,
samples, simulated wire bytes) so the transport-comparison bench can
contrast tree fan-in choices against the pub/sub bus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..core.metric import SeriesBatch

__all__ = ["Sampler", "Aggregator", "build_tree", "TreeStats"]

SamplerFn = Callable[[float], list[SeriesBatch]]


class Sampler:
    """A leaf metric producer (one per node/daemon in real LDMS)."""

    def __init__(self, name: str, fn: SamplerFn) -> None:
        self.name = name
        self.fn = fn
        self.pulls = 0

    def pull(self, now: float) -> list[SeriesBatch]:
        self.pulls += 1
        return self.fn(now)


@dataclass(frozen=True, slots=True)
class TreeStats:
    pulls: int
    batches: int
    samples: int
    wire_bytes: int


class Aggregator:
    """Pulls from children (samplers or other aggregators) and fans in."""

    def __init__(
        self,
        name: str,
        children: Sequence["Aggregator | Sampler"],
    ) -> None:
        if not children:
            raise ValueError("aggregator needs at least one child")
        self.name = name
        self.children = list(children)
        self.pulls = 0
        self.batches_moved = 0
        self.samples_moved = 0
        self.wire_bytes = 0

    def pull(self, now: float) -> list[SeriesBatch]:
        """One synchronized collection sweep over the subtree."""
        self.pulls += 1
        out: list[SeriesBatch] = []
        for child in self.children:
            got = child.pull(now)
            out.extend(got)
        self.batches_moved += len(out)
        n_samples = sum(len(b) for b in out)
        self.samples_moved += n_samples
        # wire cost model: 16 B per sample + 64 B per batch header
        self.wire_bytes += n_samples * 16 + len(out) * 64
        return out

    def stats(self) -> TreeStats:
        return TreeStats(
            pulls=self.pulls,
            batches=self.batches_moved,
            samples=self.samples_moved,
            wire_bytes=self.wire_bytes,
        )

    def depth(self) -> int:
        kid_depths = [
            c.depth() if isinstance(c, Aggregator) else 0
            for c in self.children
        ]
        return 1 + max(kid_depths)


def build_tree(
    samplers: Sequence[Sampler],
    fan_in: int = 16,
    name_prefix: str = "agg",
) -> Aggregator:
    """Build a balanced pull tree over ``samplers`` with the given fan-in.

    Returns the root aggregator.  With ``fan_in >= len(samplers)`` the
    tree is a single level (the small-site configuration); large systems
    get ``ceil(log_fan_in(n))`` levels, the way production LDMS deploys
    scale to 20k+ nodes.
    """
    if fan_in < 2:
        raise ValueError("fan_in must be >= 2")
    level: list[Aggregator | Sampler] = list(samplers)
    tier = 0
    while len(level) > 1 or tier == 0:
        nxt: list[Aggregator | Sampler] = []
        for i in range(0, len(level), fan_in):
            group = level[i : i + fan_in]
            nxt.append(
                Aggregator(f"{name_prefix}-L{tier}-{i // fan_in}", group)
            )
        level = nxt
        tier += 1
        if len(level) == 1:
            break
    root = level[0]
    assert isinstance(root, Aggregator)
    return root
