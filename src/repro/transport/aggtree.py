"""LDMS-style aggregator-tree transport: multi-level coalescing fan-in.

LANL, NCSA, and SNL all moved their metric firehose onto LDMS
aggregator trees: node-level samplers feed leaf aggregator daemons,
which feed second-level aggregators, which feed the store — each level
merging many small metric sets into fewer, larger ones, so the message
count crossing the top of the tree is orders of magnitude below the
per-node publish count.  :class:`AggregatorTree` is that topology as a
:class:`~repro.transport.base.Transport`:

* ``publish`` assigns each :class:`~repro.core.metric.SeriesBatch` to a
  leaf aggregator (stable hash of the publishing source, so one
  producer's batches always traverse the same leaf) where it is
  buffered per topic;
* on :meth:`pump`, topics whose oldest buffered sample is at least
  ``window_s`` old are coalesced — all buffered batches for the topic
  merged into one — and forwarded up through ``ceil(log_fan_in(leaves))``
  merge levels into the delivery bus at the root;
* leaf buffers are bounded: overflow evicts the oldest buffered batch
  (counted per leaf in batches and points, so loss is auditable);
* non-batch payloads (events) bypass coalescing and deliver straight
  to the root — the event plane stays timely while the metric firehose
  is batched.

``stats()`` exposes the coalescing win directly: ``upstream_messages``
(merged batches entering the root) versus ``batches_in`` (publishes),
with point-level accounting proving nothing was lost or duplicated.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from ..core.hashing import stable_bucket
from ..core.metric import SeriesBatch, merge_batches
from ..core.tracectx import HOP_LEAF, HOP_MERGE, HOP_ROOT
from .base import BusStats, Subscription, Transport
from .bus import MessageBus
from .message import Envelope

__all__ = ["AggregatorTree", "TreeTransportStats"]


@dataclass(frozen=True, slots=True)
class TreeTransportStats(BusStats):
    """BusStats plus the tree's coalescing and loss accounting."""

    leaves: int = 0
    levels: int = 0
    batches_in: int = 0
    points_in: int = 0
    leaf_messages: int = 0
    upstream_messages: int = 0
    points_forwarded: int = 0
    dropped_batches: int = 0
    dropped_points: int = 0

    @property
    def coalesce_ratio(self) -> float:
        """Publishes per upstream message (>= 1 means net coalescing)."""
        if self.upstream_messages == 0:
            return float("nan")
        return self.batches_in / self.upstream_messages


class _LeafAggregator:
    """One leaf daemon: bounded per-topic batch buffers."""

    __slots__ = ("index", "maxlen", "pending", "dropped_batches",
                 "dropped_points")

    def __init__(self, index: int, maxlen: int) -> None:
        self.index = index
        self.maxlen = maxlen
        # FIFO of (topic, batch, oldest-sample-time) preserving arrival order
        self.pending: deque[tuple[str, SeriesBatch, float]] = deque()
        self.dropped_batches = 0
        self.dropped_points = 0

    def offer(
        self, topic: str, batch: SeriesBatch
    ) -> tuple[str, SeriesBatch] | None:
        """Buffer; returns the evicted (topic, batch) when drop-oldest
        fires (so the tree can account the loss), else None."""
        evicted = None
        if len(self.pending) >= self.maxlen:
            old_tp, old, _ = self.pending.popleft()  # drop-oldest under storm
            self.dropped_batches += 1
            self.dropped_points += len(old)
            evicted = (old_tp, old)
        t = float(batch.times.min()) if len(batch) else float("-inf")
        self.pending.append((topic, batch, t))
        return evicted

    def take_due(
        self, now: float | None, window_s: float
    ) -> list[tuple[str, SeriesBatch]]:
        """Pop every buffered batch whose topic's window has elapsed."""
        if not self.pending:
            return []
        if now is None:
            out = [(tp, b) for tp, b, _ in self.pending]
            self.pending.clear()
            return out
        oldest: dict[str, float] = {}
        for tp, _, t in self.pending:       # FIFO: first entry is oldest
            if tp not in oldest:
                oldest[tp] = t
        due = {tp for tp, t in oldest.items() if t <= now - window_s}
        if not due:
            return []
        keep: deque[tuple[str, SeriesBatch, float]] = deque()
        out: list[tuple[str, SeriesBatch]] = []
        for tp, b, t in self.pending:
            if tp in due:
                out.append((tp, b))
            else:
                keep.append((tp, b, t))
        self.pending = keep
        return out


def _coalesce(entries: list[tuple[str, SeriesBatch]]) -> list[tuple[str, SeriesBatch]]:
    """Merge batches per (topic, metric), preserving first-seen order."""
    groups: dict[tuple[str, str], list[SeriesBatch]] = {}
    for topic, batch in entries:
        groups.setdefault((topic, batch.metric), []).append(batch)
    out: list[tuple[str, SeriesBatch]] = []
    for (topic, _), batches in groups.items():
        non_empty = [b for b in batches if len(b)]
        if not non_empty:
            continue
        merged = non_empty[0] if len(non_empty) == 1 else merge_batches(non_empty)
        out.append((topic, merged))
    return out


class AggregatorTree(Transport):
    """Multi-level fan-in of coalesced batches over a delivery bus."""

    def __init__(
        self,
        leaves: int = 8,
        fan_in: int = 4,
        window_s: float = 0.0,
        leaf_queue_len: int = 4096,
        default_queue_len: int = 10_000,
        match_cache_size: int = 4096,
    ) -> None:
        if leaves < 1:
            raise ValueError("leaves must be >= 1")
        if fan_in < 2:
            raise ValueError("fan_in must be >= 2")
        if window_s < 0:
            raise ValueError("window_s must be >= 0")
        self.n_leaves = int(leaves)
        self.fan_in = int(fan_in)
        self.window_s = float(window_s)
        self._leaves = [
            _LeafAggregator(i, int(leaf_queue_len))
            for i in range(self.n_leaves)
        ]
        self._root = MessageBus(
            default_queue_len=default_queue_len,
            match_cache_size=match_cache_size,
        )
        self._published = 0
        self._batches_in = 0
        self._points_in = 0
        self._leaf_messages = 0
        self._upstream_messages = 0
        self._points_forwarded = 0

    @property
    def levels(self) -> int:
        """Merge levels between the leaves and the root bus."""
        n, levels = self.n_leaves, 1
        while n > 1:
            n = -(-n // self.fan_in)
            levels += 1
        return levels

    def leaf_of(self, topic: str, source: str = "") -> int:
        """Stable producer -> leaf assignment (source-keyed, like a node
        daemon pinned to its aggregator; topic-keyed when anonymous)."""
        return stable_bucket(source or topic, self.n_leaves)

    # -- Transport surface --------------------------------------------------

    def subscribe(
        self,
        pattern: str,
        callback: Callable[[Envelope], None] | None = None,
        maxlen: int | None = None,
        name: str = "",
    ) -> Subscription:
        """Consumers sit at the root: they see merged batches."""
        return self._root.subscribe(pattern, callback, maxlen, name)

    def unsubscribe(self, sub: Subscription) -> None:
        self._root.unsubscribe(sub)

    def publish(self, topic: str, payload, source: str = "") -> int:
        """Batches buffer at a leaf; anything else delivers immediately."""
        self._published += 1
        if isinstance(payload, SeriesBatch):
            self._batches_in += 1
            self._points_in += len(payload)
            ledger = self.ledger
            if ledger is not None and ledger.tracks(topic):
                ledger.published_batch(source, payload)
            if self.clock is not None and payload.trace is not None:
                payload.trace.stamp(HOP_LEAF, self.clock())
            evicted = self._leaves[self.leaf_of(topic, source)].offer(
                topic, payload
            )
            if (evicted is not None and ledger is not None
                    and ledger.tracks(evicted[0])):
                ledger.lost_batch("leaf-overflow", evicted[1])
            return 0
        return self._root.publish(topic, payload, source)

    def pump(self, now: float | None = None) -> int:
        """Coalesce due topics at every leaf and fan them in to the root.

        With a parallel executor attached, the per-leaf coalescing (the
        pure merge compute over each leaf's private due entries) fans
        out across workers; ``take_due`` (leaf-state mutation) and the
        merge-up/root-publish fan-in stay on the pumping thread, so
        delivery order and every counter are identical to serial.
        """
        due = [leaf.take_due(now, self.window_s) for leaf in self._leaves]
        ex = self.executor
        busy = [entries for entries in due if entries]
        if ex is not None and ex.parallel and len(busy) > 1:
            merged_busy = iter(ex.map_ordered(
                [lambda e=entries: _coalesce(e) for entries in busy]
            ))
            groups = [next(merged_busy) if entries else []
                      for entries in due]
        else:
            groups = [_coalesce(entries) for entries in due]
        for merged in groups:
            self._leaf_messages += len(merged)
        while len(groups) > 1:
            nxt: list[list[tuple[str, SeriesBatch]]] = []
            for i in range(0, len(groups), self.fan_in):
                chunk = [m for g in groups[i:i + self.fan_in] for m in g]
                nxt.append(_coalesce(chunk))
            groups = nxt
        moved = 0
        t = self._hop_time(now)
        for topic, batch in (groups[0] if groups else []):
            self._upstream_messages += 1
            self._points_forwarded += len(batch)
            if t is not None and batch.trace is not None:
                # merge and root forwarding happen inside one pump, so
                # both hops stamp the same instant (root delta is 0);
                # the waterfall still shows the full traversal path
                batch.trace.stamp(HOP_MERGE, t)
                batch.trace.stamp(HOP_ROOT, t)
            self._root.publish(topic, batch, source="aggtree")
            moved += 1
        return moved

    def in_flight_points(self) -> int:
        """Tracked points buffered in leaf coalescing windows.

        The root bus delivers synchronously inside its ``publish``, so
        only the leaves hold points between pumps.
        """
        ledger = self.ledger
        if ledger is None:
            return 0
        total = 0
        for leaf in self._leaves:
            for tp, batch, _ in leaf.pending:
                if ledger.tracks(tp):
                    total += len(batch)
        return total

    # -- self-monitoring surfaces -------------------------------------------

    def leaf_depths(self) -> dict[str, int]:
        """Buffered (not yet forwarded) batches per leaf aggregator."""
        return {
            f"leaf-{leaf.index}": len(leaf.pending)
            for leaf in self._leaves
        }

    def queue_depths(self) -> dict[str, int]:
        depths: dict[str, int] = dict(self._root.queue_depths())
        depths.update(self.leaf_depths())
        return depths

    def stats(self) -> TreeTransportStats:
        root = self._root.stats()
        return TreeTransportStats(
            published=self._published,
            delivered=root.delivered,
            dropped=sum(lf.dropped_batches for lf in self._leaves)
            + root.dropped,
            subscriptions=root.subscriptions,
            errors=root.errors,
            queue_depths=self.queue_depths(),
            leaves=self.n_leaves,
            levels=self.levels,
            batches_in=self._batches_in,
            points_in=self._points_in,
            leaf_messages=self._leaf_messages,
            upstream_messages=self._upstream_messages,
            points_forwarded=self._points_forwarded,
            dropped_batches=sum(lf.dropped_batches for lf in self._leaves),
            dropped_points=sum(lf.dropped_points for lf in self._leaves),
        )
