"""Node performance-counter collectors (/proc + MSR + NIC class).

The sites read "performance counters and state registers ... from a
variety of sources including the /proc and /sys file systems; the
Performance API (PAPI); Model-Specific Registers (MSRs); network
performance counters" (Section III-A).  Here:

* :class:`NodeCounterCollector` — CPU utilization, free memory, load,
  and the node's local-clock offset (feeding the clock-drift analysis);
* :class:`InjectionCollector` — per-node achieved injection bandwidth
  fraction (the Figure 1 quantity);
* :class:`NetLinkCollector` — per-link HSN counters (SNL): cumulative
  traffic and stall flits, the derived stall ratio, utilization, BER.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..core.metric import SeriesBatch
from .base import Collector, CollectorOutput

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.machine import Machine

__all__ = ["NodeCounterCollector", "InjectionCollector", "NetLinkCollector"]


class NodeCounterCollector(Collector):
    """Whole-system synchronized sweep of basic node counters."""

    metrics = (
        "node.cpu_util",
        "node.mem_free_gb",
        "node.load1",
        "node.clock_offset_s",
    )

    def __init__(self, interval_s: float = 60.0) -> None:
        super().__init__("node_counters", interval_s)

    def collect(self, machine: "Machine", now: float) -> CollectorOutput:
        names = machine.nodes.names
        offsets = np.fromiter(
            (machine.node_clocks[n].error_at(now) for n in names),
            dtype=np.float64,
            count=len(names),
        )
        return CollectorOutput(
            batches=[
                SeriesBatch.sweep(
                    "node.cpu_util", now, names, machine.nodes.cpu_util.copy()
                ),
                SeriesBatch.sweep(
                    "node.mem_free_gb", now, names, machine.nodes.mem_free_gb.copy()
                ),
                SeriesBatch.sweep(
                    "node.load1", now, names, machine.nodes.load1.copy()
                ),
                SeriesBatch.sweep(
                    "node.clock_offset_s", now, names, offsets
                ),
            ]
        )


class InjectionCollector(Collector):
    """Per-node achieved injection bandwidth fraction (Figure 1)."""

    metrics = ("node.inject_bw_frac",)

    def __init__(self, interval_s: float = 60.0) -> None:
        super().__init__("injection", interval_s)

    def collect(self, machine: "Machine", now: float) -> CollectorOutput:
        return CollectorOutput(
            batches=[
                SeriesBatch.sweep(
                    "node.inject_bw_frac",
                    now,
                    machine.nodes.names,
                    machine.network.inject_bw_frac(),
                )
            ]
        )


class NetLinkCollector(Collector):
    """Synchronized per-link HSN counter sweep (SNL, 1-60 s intervals)."""

    metrics = (
        "link.traffic_flits",
        "link.stall_flits",
        "link.stall_ratio",
        "link.util",
        "link.ber",
    )

    def __init__(self, interval_s: float = 60.0) -> None:
        super().__init__("net_links", interval_s)

    def collect(self, machine: "Machine", now: float) -> CollectorOutput:
        net = machine.network
        names = net.link_names()
        return CollectorOutput(
            batches=[
                SeriesBatch.sweep(
                    "link.traffic_flits", now, names, net.cum_traffic_flits.copy()
                ),
                SeriesBatch.sweep(
                    "link.stall_flits", now, names, net.cum_stall_flits.copy()
                ),
                SeriesBatch.sweep(
                    "link.stall_ratio", now, names, net.link_stall_ratio.copy()
                ),
                SeriesBatch.sweep("link.util", now, names, net.link_util.copy()),
                SeriesBatch.sweep("link.ber", now, names, net.ber.copy()),
            ]
        )
