"""Benchmark suites: active probes of compute, network, and I/O health.

LANL runs "a suite of custom tests ... system-wide, on 10 minute
intervals across all relevant components and subsystems"; NERSC
"regularly runs a suite of custom benchmarks that exercise compute,
network, and I/O functionality, and publishes performance over time"
(Figure 2).  CSCS/KAUST/NCSA run similar suites (Section III-A).

Each benchmark computes a figure of merit from the machine's *current*
state — so injected faults (slow OST, congestion, frequency caps,
memory pressure) show up as FOM drops exactly the way real benchmark
tracking surfaces problems.  The :class:`BenchmarkSuite` collector runs
all benchmarks on its interval, publishes ``bench.fom`` /
``bench.runtime_s`` series, and emits TEST events (pass/fail against a
fraction-of-nominal threshold) for the dashboard and SEC paths.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..cluster.topology import NoRouteError
from ..core.events import Event, EventKind, Severity
from ..core.metric import SeriesBatch
from .base import Collector, CollectorOutput

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.machine import Machine

__all__ = [
    "Benchmark",
    "ComputeBenchmark",
    "MemoryBenchmark",
    "NetworkBenchmark",
    "IoBenchmark",
    "MetadataBenchmark",
    "BenchmarkSuite",
    "default_suite",
]


@dataclass(frozen=True, slots=True)
class BenchResult:
    name: str
    fom: float            # higher is better
    runtime_s: float
    nominal: float

    @property
    def fraction_of_nominal(self) -> float:
        return self.fom / self.nominal if self.nominal else float("nan")


class Benchmark(abc.ABC):
    """One benchmark with a nominal (healthy-machine) figure of merit."""

    def __init__(self, name: str, nominal_fom: float,
                 nominal_runtime_s: float) -> None:
        self.name = name
        self.nominal_fom = float(nominal_fom)
        self.nominal_runtime_s = float(nominal_runtime_s)

    @abc.abstractmethod
    def efficiency(self, machine: "Machine",
                   rng: np.random.Generator) -> float:
        """Current machine efficiency for this benchmark, in (0, 1]."""

    def run(self, machine: "Machine", rng: np.random.Generator) -> BenchResult:
        eff = float(np.clip(self.efficiency(machine, rng), 1e-3, 1.0))
        noise = rng.normal(1.0, 0.01)
        fom = self.nominal_fom * eff * max(noise, 0.5)
        runtime = self.nominal_runtime_s / max(eff, 1e-3)
        return BenchResult(self.name, fom, runtime, self.nominal_fom)


class ComputeBenchmark(Benchmark):
    """DGEMM-class: sensitive to frequency caps and hung/down nodes."""

    def __init__(self, sample_nodes: int = 16) -> None:
        super().__init__("dgemm", nominal_fom=1000.0, nominal_runtime_s=120.0)
        self.sample_nodes = sample_nodes

    def efficiency(self, machine, rng):
        store = machine.nodes
        usable = np.nonzero(store.up & ~store.hung)[0]
        if len(usable) == 0:
            return 1e-3
        picks = rng.choice(
            usable, size=min(self.sample_nodes, len(usable)), replace=False
        )
        # flops scale ~ f; drawn on idle nodes so contention-free
        return float(store.pstate_frac[picks].mean())


class MemoryBenchmark(Benchmark):
    """STREAM-class: collapses when nodes run out of free memory."""

    def __init__(self, sample_nodes: int = 16) -> None:
        super().__init__("stream", nominal_fom=200.0, nominal_runtime_s=60.0)
        self.sample_nodes = sample_nodes

    def efficiency(self, machine, rng):
        store = machine.nodes
        usable = np.nonzero(store.up & ~store.hung)[0]
        if len(usable) == 0:
            return 1e-3
        picks = rng.choice(
            usable, size=min(self.sample_nodes, len(usable)), replace=False
        )
        # the benchmark needs a working set; severe memory pressure
        # (leak faults) forces it into a degraded small-array mode
        free = store.mem_free_gb[picks]
        frac_ok = float((free >= 8.0).mean())
        return max(0.05, frac_ok)


class NetworkBenchmark(Benchmark):
    """Allreduce/pingpong-class: slowed by congestion on probe paths."""

    def __init__(self, sample_pairs: int = 12) -> None:
        super().__init__("allreduce", nominal_fom=500.0,
                         nominal_runtime_s=90.0)
        self.sample_pairs = sample_pairs

    def efficiency(self, machine, rng):
        topo = machine.topo
        util = machine.network.link_util
        nodes = topo.nodes
        slowdowns = []
        for _ in range(self.sample_pairs):
            i, j = rng.choice(len(nodes), size=2, replace=False)
            try:
                route = topo.route(nodes[i], nodes[j])
            except NoRouteError:
                slowdowns.append(0.05)   # partitioned path
                continue
            worst = max((util[k] for k in route), default=0.0)
            # messages share links with production traffic
            slowdowns.append(max(0.05, 1.0 - 0.9 * worst))
        return float(np.mean(slowdowns)) if slowdowns else 1.0


class IoBenchmark(Benchmark):
    """IOR-class: reads through every OST; slow OSTs drag the stripe."""

    def __init__(self) -> None:
        super().__init__("ior_read", nominal_fom=100.0,
                         nominal_runtime_s=180.0)

    def efficiency(self, machine, rng):
        fs = machine.fs
        base = fs.base_io_latency_s
        lats = np.array(
            [fs.probe_io_latency(i) for i in range(fs.n_ost)]
        )
        # striped I/O completes when the slowest OST completes
        return float(np.clip(base / lats.max(), 0.0, 1.0))


class MetadataBenchmark(Benchmark):
    """mdtest-class: create/stat/unlink rate against the MDS."""

    def __init__(self) -> None:
        super().__init__("mdtest", nominal_fom=50.0, nominal_runtime_s=60.0)

    def efficiency(self, machine, rng):
        fs = machine.fs
        lat = np.mean([fs.probe_md_latency() for _ in range(5)])
        return float(np.clip(fs.base_md_latency_s / lat, 0.0, 1.0))


class BenchmarkSuite(Collector):
    """Periodic suite runner (LANL 10-min / NERSC tracked benchmarks)."""

    metrics = ("bench.fom", "bench.runtime_s")

    def __init__(
        self,
        benchmarks: Sequence[Benchmark] | None = None,
        interval_s: float = 600.0,
        pass_threshold: float = 0.8,
        seed: int = 0,
    ) -> None:
        super().__init__("benchmark_suite", interval_s)
        self.benchmarks = (
            list(benchmarks) if benchmarks is not None else default_suite()
        )
        self.pass_threshold = float(pass_threshold)
        self._rng = np.random.default_rng(seed)
        self.history: list[BenchResult] = []

    def collect(self, machine: "Machine", now: float) -> CollectorOutput:
        results = [b.run(machine, self._rng) for b in self.benchmarks]
        self.history.extend(results)
        names = [r.name for r in results]
        out = CollectorOutput(
            batches=[
                SeriesBatch.sweep(
                    "bench.fom", now, names, [r.fom for r in results]
                ),
                SeriesBatch.sweep(
                    "bench.runtime_s", now, names,
                    [r.runtime_s for r in results],
                ),
            ]
        )
        for r in results:
            passed = r.fraction_of_nominal >= self.pass_threshold
            out.events.append(
                Event(
                    time=now,
                    component=r.name,
                    kind=EventKind.TEST,
                    severity=Severity.INFO if passed else Severity.WARNING,
                    message=(
                        f"benchmark {r.name} "
                        f"{'passed' if passed else 'DEGRADED'}: "
                        f"fom={r.fom:.1f} "
                        f"({100 * r.fraction_of_nominal:.0f}% of nominal)"
                    ),
                    fields={
                        "fom": r.fom,
                        "nominal": r.nominal,
                        "fraction": r.fraction_of_nominal,
                        "passed": passed,
                    },
                )
            )
        return out


def default_suite() -> list[Benchmark]:
    """The compute/memory/network/IO/metadata suite the sites describe."""
    return [
        ComputeBenchmark(),
        MemoryBenchmark(),
        NetworkBenchmark(),
        IoBenchmark(),
        MetadataBenchmark(),
    ]
