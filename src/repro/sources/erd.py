"""Event router (ERD analog) and the Deluge-style decoder.

Section IV-A, case 1: Cray's Event Router Daemon "transports all event
information" in "a proprietary binary format (a small subset is made
available to operations staff in text format for troubleshooting)".
ALCF's Deluge reads the raw stream and decodes it to native form,
"enabling more usable and complete data from the ERD event stream".

We reproduce the architecture honestly:

* :class:`EventRouter` is the single drain point for machine events; it
  encodes *everything* into binary frames (the vendor stream) and keeps
  them in per-kind ring buffers;
* :meth:`EventRouter.text_subset` is the lossy vendor-provided text
  path: only a whitelisted subset of kinds, flattened to strings, with
  structured fields discarded — the "less usable forms of data" the
  paper complains about;
* :class:`DelugeTap` decodes the raw frames back into full
  :class:`~repro.core.events.Event` objects with fields intact — the
  get-closer-to-the-source path.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Sequence

from ..core.events import Event, EventKind
from ..transport.message import Envelope, decode_binary, encode_binary

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.machine import Machine

__all__ = ["EventRouter", "DelugeTap"]

# the troubleshooting subset Cray exposes as text by default
_TEXT_SUBSET_KINDS = (EventKind.CONSOLE, EventKind.HWERR)


class EventRouter:
    """Routes all machine events as opaque binary frames."""

    def __init__(self, max_buffer: int = 100_000) -> None:
        self._frames: deque[bytes] = deque(maxlen=max_buffer)
        self._seq = 0
        self.events_routed = 0
        self._taps: list["DelugeTap"] = []

    def pump(self, machine: "Machine") -> int:
        """Drain the machine's pending events into the binary stream."""
        events = machine.drain_events()
        for ev in events:
            self._seq += 1
            frame = encode_binary(
                Envelope(
                    topic=f"erd.{ev.kind.value}",
                    payload=ev,
                    source="erd",
                    seq=self._seq,
                )
            )
            self._frames.append(frame)
            for tap in self._taps:
                tap._offer(frame)
        self.events_routed += len(events)
        return len(events)

    # -- vendor text path (lossy) ------------------------------------------------

    def text_subset(self, max_lines: int | None = None) -> list[str]:
        """The default vendor-exposed view: text lines for a whitelisted
        subset of event kinds, structured fields dropped."""
        lines: list[str] = []
        for frame in self._frames:
            env, _ = decode_binary(frame)
            ev = env.payload
            assert isinstance(ev, Event)
            if ev.kind in _TEXT_SUBSET_KINDS:
                lines.append(ev.syslog_line())   # fields are gone
                if max_lines is not None and len(lines) >= max_lines:
                    break
        return lines

    # -- raw path ------------------------------------------------------------------

    def attach(self, tap: "DelugeTap") -> "DelugeTap":
        """Attach a raw-stream consumer (gets frames from now on)."""
        self._taps.append(tap)
        return tap

    def raw_frames(self) -> list[bytes]:
        return list(self._frames)


class DelugeTap:
    """ALCF-style decoder: raw frames -> native events, fields intact."""

    def __init__(self, kinds: Sequence[EventKind] | None = None) -> None:
        self.kinds = tuple(kinds) if kinds else None
        self._decoded: deque[Event] = deque()
        self.frames_seen = 0

    def _offer(self, frame: bytes) -> None:
        self.frames_seen += 1
        env, _ = decode_binary(frame)
        ev = env.payload
        assert isinstance(ev, Event)
        if self.kinds is None or ev.kind in self.kinds:
            self._decoded.append(ev)

    def decode_backlog(self, router: EventRouter) -> int:
        """Decode frames already buffered before this tap attached."""
        n = 0
        for frame in router.raw_frames():
            self._offer(frame)
            n += 1
        return n

    def drain(self) -> list[Event]:
        out = list(self._decoded)
        self._decoded.clear()
        return out
