"""Power monitoring: cabinet and system power (KAUST / PMDB class).

KAUST watches total system power and per-cabinet power to stay inside a
power budget and to detect application/system problems from power
signatures (Figure 3).  This collector publishes the aggregated
``cabinet.power_w`` and ``system.power_w`` series on top of the node
power the SEDC sweep already provides.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..cluster.power import PowerModel
from ..core.metric import SeriesBatch
from .base import Collector, CollectorOutput

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.machine import Machine

__all__ = ["PowerCollector"]


class PowerCollector(Collector):
    """Cabinet + system power sweep."""

    metrics = ("cabinet.power_w", "system.power_w")

    def __init__(self, machine: "Machine", interval_s: float = 60.0) -> None:
        super().__init__("power", interval_s)
        self._pm = PowerModel(machine.topo, machine.nodes)

    def collect(self, machine: "Machine", now: float) -> CollectorOutput:
        cab = self._pm.cabinet_power_w()
        return CollectorOutput(
            batches=[
                SeriesBatch.sweep(
                    "cabinet.power_w", now, self._pm.cabinet_names(), cab
                ),
                SeriesBatch.sweep(
                    "system.power_w", now, ["system"], [float(cab.sum())]
                ),
            ]
        )
