"""Datacenter environment monitoring (ORNL / NERSC facility class).

ORNL's sulfur-corrosion story (Section II-6) ends with: "ORNL now
monitors their data center environment to ensure that ASHRAE standards
for particulate and corrosive gases are [not] exceeded."  NERSC
"captures large volumes of environmental data about its systems and
facilities".  This collector publishes room ambient conditions,
humidity, particulate concentration, and the corrosion-coupon rate the
GPU-ageing model responds to, and emits a warning event when ASHRAE
severity thresholds are crossed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.events import Event, EventKind, Severity
from ..core.metric import SeriesBatch
from .base import Collector, CollectorOutput

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.machine import Machine

__all__ = ["EnvironmentCollector", "ASHRAE_G1_CORROSION_LIMIT"]

# ANSI/ISA-71.04 G1 "mild" class: copper coupon < 300 Angstrom/month
ASHRAE_G1_CORROSION_LIMIT = 300.0
PARTICULATE_LIMIT_UG_M3 = 150.0


class EnvironmentCollector(Collector):
    """Machine-room environment sweep with ASHRAE threshold alerts."""

    metrics = (
        "env.temp_c",
        "env.humidity",
        "env.corrosion_rate",
        "env.particulate",
    )

    def __init__(self, interval_s: float = 300.0, room: str = "room0") -> None:
        super().__init__("environment", interval_s)
        self.room = room
        self._over_limit = False

    def collect(self, machine: "Machine", now: float) -> CollectorOutput:
        env = machine.room
        out = CollectorOutput(
            batches=[
                SeriesBatch.sweep("env.temp_c", now, [self.room],
                                  [env.ambient_c]),
                SeriesBatch.sweep("env.humidity", now, [self.room],
                                  [env.humidity]),
                SeriesBatch.sweep("env.corrosion_rate", now, [self.room],
                                  [env.corrosion_rate]),
                SeriesBatch.sweep("env.particulate", now, [self.room],
                                  [env.particulate]),
            ]
        )
        over = (
            env.corrosion_rate > ASHRAE_G1_CORROSION_LIMIT
            or env.particulate > PARTICULATE_LIMIT_UG_M3
        )
        if over and not self._over_limit:
            out.events.append(
                Event(
                    time=now,
                    component=self.room,
                    kind=EventKind.ENV,
                    severity=Severity.WARNING,
                    message=(
                        f"ASHRAE excursion: corrosion "
                        f"{env.corrosion_rate:.0f} A/month, particulate "
                        f"{env.particulate:.0f} ug/m3"
                    ),
                    fields={
                        "corrosion_rate": env.corrosion_rate,
                        "particulate": env.particulate,
                    },
                )
            )
        self._over_limit = over
        return out
