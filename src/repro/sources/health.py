"""Node health checks: the LANL periodic suite and the CSCS job gate.

LANL (Section II-1): system-wide custom tests every 10 minutes —
configurations, "verification that essential services and daemons are
functional, including filesystem mounts; and ensuring there is an
appropriate amount of free memory on compute nodes".

CSCS (Section II-5): "no job should start on a node with a problem, and
a problem should only be encountered by at most one batch job – the job
that was running when the problem first occurred."  The test suite runs
before and after each job; failing nodes are replaced (pre) or drained
(post).

:class:`NodeHealthSuite` implements the checks and doubles as the
periodic LANL-style collector; :class:`HealthGate` wires the suite into
the scheduler as the CSCS pre/post-job policy.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..cluster.node import ESSENTIAL_MOUNTS, ESSENTIAL_SERVICES
from ..core.events import Event, EventKind, Severity
from ..core.metric import SeriesBatch
from .base import Collector, CollectorOutput

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.machine import Machine
    from ..cluster.workload import Job

__all__ = [
    "CheckResult",
    "HealthCheck",
    "ConfigCheck",
    "ServiceCheck",
    "MountCheck",
    "FreeMemoryCheck",
    "ResponsivenessCheck",
    "GpuCheck",
    "ClockSyncCheck",
    "NodeHealthSuite",
    "HealthGate",
    "default_checks",
]


@dataclass(frozen=True, slots=True)
class CheckResult:
    check: str
    node: str
    passed: bool
    detail: str = ""


class HealthCheck(abc.ABC):
    """One per-node health predicate."""

    name: str = "check"

    @abc.abstractmethod
    def check(self, machine: "Machine", node: str) -> CheckResult:
        ...


class ServiceCheck(HealthCheck):
    """All essential daemons running (LANL)."""

    name = "services"

    def check(self, machine, node):
        n = machine.nodes.node(node)
        dead = [s for s in ESSENTIAL_SERVICES if not n.service_ok(s)]
        return CheckResult(
            self.name, node, not dead,
            f"dead: {','.join(dead)}" if dead else "",
        )


class MountCheck(HealthCheck):
    """All required filesystem mounts present (LANL)."""

    name = "mounts"

    def check(self, machine, node):
        n = machine.nodes.node(node)
        missing = [m for m in ESSENTIAL_MOUNTS if not n.mount_ok(m)]
        return CheckResult(
            self.name, node, not missing,
            f"missing: {','.join(missing)}" if missing else "",
        )


class FreeMemoryCheck(HealthCheck):
    """Appropriate free memory on compute nodes (LANL)."""

    name = "free_memory"

    def __init__(self, min_free_gb: float = 4.0) -> None:
        self.min_free_gb = float(min_free_gb)

    def check(self, machine, node):
        free = machine.nodes.node(node).mem_free_gb
        ok = free >= self.min_free_gb
        return CheckResult(
            self.name, node, ok,
            "" if ok else f"free {free:.1f} GiB < {self.min_free_gb} GiB",
        )


class ResponsivenessCheck(HealthCheck):
    """Node answers at all (hung/down detection)."""

    name = "responsive"

    def check(self, machine, node):
        n = machine.nodes.node(node)
        if not n.up:
            return CheckResult(self.name, node, False, "node down")
        if n.hung:
            return CheckResult(self.name, node, False, "node hung")
        return CheckResult(self.name, node, True)


class GpuCheck(HealthCheck):
    """GPU present and healthy (CSCS's Piz Daint GPU validation)."""

    name = "gpu"

    def check(self, machine, node):
        gpus = machine.gpus
        if gpus is None or node not in gpus.index:
            return CheckResult(self.name, node, True, "no gpu")
        i = gpus.index[node]
        if gpus.failed[i]:
            return CheckResult(self.name, node, False, "gpu failed")
        if gpus.ecc_dbe[i] > 0:
            return CheckResult(
                self.name, node, False,
                f"gpu reporting {int(gpus.ecc_dbe[i])} DBE ECC errors",
            )
        return CheckResult(self.name, node, True)


class ConfigCheck(HealthCheck):
    """Node configuration matches the fleet majority (LANL verifies
    "configurations (e.g. on burst buffer nodes)" every 10 minutes).

    The golden reference is the fleet's modal fingerprint, so the check
    needs no externally maintained truth — a lone drifted node stands
    out, and a fleet-wide (intentional) change is quiet.
    """

    name = "config"

    def check(self, machine, node):
        hashes = machine.nodes.config_hash
        values, counts = np.unique(hashes, return_counts=True)
        golden = int(values[counts.argmax()])
        mine = int(hashes[machine.nodes.idx(node)])
        ok = mine == golden
        return CheckResult(
            self.name, node, ok,
            "" if ok else f"config {mine:#x} != fleet golden {golden:#x}",
        )


class ClockSyncCheck(HealthCheck):
    """Local clock within tolerance of the global timebase."""

    name = "clock_sync"

    def __init__(self, max_offset_s: float = 1.0) -> None:
        self.max_offset_s = float(max_offset_s)

    def check(self, machine, node):
        err = abs(machine.node_clocks[node].error_at(machine.now))
        ok = err <= self.max_offset_s
        return CheckResult(
            self.name, node, ok,
            "" if ok else f"clock off by {err:.3f}s",
        )


def default_checks() -> list[HealthCheck]:
    return [
        ResponsivenessCheck(),
        ServiceCheck(),
        MountCheck(),
        FreeMemoryCheck(),
        GpuCheck(),
        ClockSyncCheck(),
        ConfigCheck(),
    ]


class NodeHealthSuite(Collector):
    """System-wide periodic health sweep (LANL 10-minute suite)."""

    metrics = ("health.pass_frac",)

    def __init__(
        self,
        checks: Sequence[HealthCheck] | None = None,
        interval_s: float = 600.0,
    ) -> None:
        super().__init__("node_health", interval_s)
        self.checks = list(checks) if checks is not None else default_checks()

    def run_node(self, machine: "Machine", node: str) -> list[CheckResult]:
        return [c.check(machine, node) for c in self.checks]

    def node_passes(self, machine: "Machine", node: str) -> bool:
        return all(r.passed for r in self.run_node(machine, node))

    def collect(self, machine: "Machine", now: float) -> CollectorOutput:
        names = machine.nodes.names
        fracs = np.empty(len(names))
        out = CollectorOutput()
        for i, node in enumerate(names):
            results = self.run_node(machine, node)
            passed = sum(r.passed for r in results)
            fracs[i] = passed / len(results)
            for r in results:
                if not r.passed:
                    out.events.append(
                        Event(
                            time=now,
                            component=node,
                            kind=EventKind.HEALTH,
                            severity=Severity.WARNING,
                            message=(
                                f"health check {r.check} FAILED on {node}: "
                                f"{r.detail}"
                            ),
                            fields={"check": r.check, "detail": r.detail},
                        )
                    )
        out.batches.append(
            SeriesBatch.sweep("health.pass_frac", now, names, fracs)
        )
        return out


class HealthGate:
    """CSCS policy: gate job starts on health; drain failures post-job.

    * Wire :meth:`gate` as the scheduler's ``health_gate`` so "no job
      should start on a node with a problem".
    * Call :meth:`post_job` when a job ends; nodes failing the suite are
      drained for "further testing and possible repair", so "a problem
      should only be encountered by at most one batch job".
    """

    def __init__(
        self,
        machine: "Machine",
        suite: NodeHealthSuite | None = None,
    ) -> None:
        self.machine = machine
        self.suite = suite or NodeHealthSuite()
        self.pre_rejections = 0
        self.drained: list[str] = []

    def gate(self, node: str) -> bool:
        ok = self.suite.node_passes(self.machine, node)
        if not ok:
            self.pre_rejections += 1
        return ok

    def post_job(self, job: "Job") -> list[str]:
        """Run the suite on a finished job's nodes; drain the failures."""
        bad: list[str] = []
        for node in job.nodes:
            if not self.suite.node_passes(self.machine, node):
                self.machine.scheduler.drain_node(node)
                self.machine.emit_event(
                    EventKind.HEALTH,
                    Severity.WARNING,
                    node,
                    f"post-job health check failed after job {job.id}; "
                    f"node drained for repair",
                    fields={"job_id": job.id},
                )
                bad.append(node)
        self.drained.extend(bad)
        return bad

    def repair_and_return(self, node: str) -> None:
        """Operator path: repaired node returns to service."""
        self.machine.scheduler.return_node(node)
        if node in self.drained:
            self.drained.remove(node)
