"""Data sources: collectors over every subsystem of the machine."""

from .base import CollectionScheduler, Collector, CollectorOutput
from .benchmarks import (
    Benchmark,
    BenchmarkSuite,
    ComputeBenchmark,
    IoBenchmark,
    MemoryBenchmark,
    MetadataBenchmark,
    NetworkBenchmark,
    default_suite,
)
from .counters import InjectionCollector, NetLinkCollector, NodeCounterCollector
from .environment import ASHRAE_G1_CORROSION_LIMIT, EnvironmentCollector
from .erd import DelugeTap, EventRouter
from .fsprobes import FsProbeCollector, OstCounterCollector
from .health import (
    CheckResult,
    ClockSyncCheck,
    ConfigCheck,
    FreeMemoryCheck,
    GpuCheck,
    HealthCheck,
    HealthGate,
    MountCheck,
    NodeHealthSuite,
    ResponsivenessCheck,
    ServiceCheck,
    default_checks,
)
from .logsource import (
    CrayLogSplitter,
    ParsedLine,
    UnifiedLogForwarder,
    parse_split_logs,
)
from .powermon import PowerCollector
from .queuestats import QueueStatsCollector
from .sedc import SedcCollector

__all__ = [
    "CollectionScheduler",
    "Collector",
    "CollectorOutput",
    "Benchmark",
    "BenchmarkSuite",
    "ComputeBenchmark",
    "IoBenchmark",
    "MemoryBenchmark",
    "MetadataBenchmark",
    "NetworkBenchmark",
    "default_suite",
    "InjectionCollector",
    "NetLinkCollector",
    "NodeCounterCollector",
    "ASHRAE_G1_CORROSION_LIMIT",
    "EnvironmentCollector",
    "DelugeTap",
    "EventRouter",
    "FsProbeCollector",
    "OstCounterCollector",
    "CheckResult",
    "ClockSyncCheck",
    "ConfigCheck",
    "FreeMemoryCheck",
    "GpuCheck",
    "HealthCheck",
    "HealthGate",
    "MountCheck",
    "NodeHealthSuite",
    "ResponsivenessCheck",
    "ServiceCheck",
    "default_checks",
    "CrayLogSplitter",
    "ParsedLine",
    "UnifiedLogForwarder",
    "parse_split_logs",
    "PowerCollector",
    "QueueStatsCollector",
    "SedcCollector",
]
