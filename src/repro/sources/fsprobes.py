"""Filesystem probes and OST counters (NCSA's Lustre monitoring).

NCSA "developed a set of probes that execute on one minute intervals and
measure file I/O and metadata action response latencies. These target
each independent filesystem component" (Section II-2).  Two collectors:

* :class:`FsProbeCollector` — active probes: per-OST small-I/O latency
  and MDS metadata-op latency, the application's-eye view;
* :class:`OstCounterCollector` — passive server-side counters: per-OST
  read/write bandwidth and fill fraction, plus derived filesystem
  aggregates (``fs.read_bps`` — the Figure 4 top panel).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..core.metric import SeriesBatch
from .base import Collector, CollectorOutput

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.machine import Machine

__all__ = ["FsProbeCollector", "OstCounterCollector"]


class FsProbeCollector(Collector):
    """Active latency probes against every filesystem component."""

    metrics = ("probe.io_latency_s", "probe.md_latency_s")

    def __init__(self, interval_s: float = 60.0, probes_per_ost: int = 1) -> None:
        super().__init__("fs_probes", interval_s)
        self.probes_per_ost = int(probes_per_ost)

    def collect(self, machine: "Machine", now: float) -> CollectorOutput:
        fs = machine.fs
        lat = [
            float(
                np.mean(
                    [fs.probe_io_latency(i)
                     for _ in range(self.probes_per_ost)]
                )
            )
            for i in range(fs.n_ost)
        ]
        md = fs.probe_md_latency()
        return CollectorOutput(
            batches=[
                SeriesBatch.sweep(
                    "probe.io_latency_s", now, fs.ost_names(), lat
                ),
                SeriesBatch.sweep(
                    "probe.md_latency_s", now, [f"{fs.name}-mds"], [md]
                ),
            ]
        )


class OstCounterCollector(Collector):
    """Passive per-OST service counters + filesystem aggregates."""

    metrics = (
        "ost.read_bps",
        "ost.write_bps",
        "ost.fill_frac",
        "fs.read_bps",
        "fs.write_bps",
        "job.io_bps",
    )

    def __init__(self, interval_s: float = 60.0) -> None:
        super().__init__("ost_counters", interval_s)

    def collect(self, machine: "Machine", now: float) -> CollectorOutput:
        fs = machine.fs
        names = fs.ost_names()
        batches = [
            SeriesBatch.sweep("ost.read_bps", now, names,
                              fs.ost_read_Bps.copy()),
            SeriesBatch.sweep("ost.write_bps", now, names,
                              fs.ost_write_Bps.copy()),
            SeriesBatch.sweep("ost.fill_frac", now, names,
                              fs.fill_fractions()),
            SeriesBatch.sweep("fs.read_bps", now, [fs.name],
                              [fs.read_Bps_total()]),
            SeriesBatch.sweep("fs.write_bps", now, [fs.name],
                              [fs.write_Bps_total()]),
        ]
        # per-job attribution series (Figure 4's "job responsible")
        if fs.job_io_Bps:
            jobs = sorted(fs.job_io_Bps)
            batches.append(
                SeriesBatch.sweep(
                    "job.io_bps", now,
                    [f"job.{j}" for j in jobs],
                    [sum(fs.job_io_Bps[j]) for j in jobs],
                )
            )
        return CollectorOutput(batches=batches)
