"""Scheduler/queue telemetry (NERSC backlog, CSC wait-time inputs).

NERSC "monitors the batch queue backlog - large or sudden changes in
outstanding demand can indicate for example a spike in jobs that fail
immediately upon starting (quickly emptying the queue) or a blockage in
the queue (quickly filling it)" (Section II-3).  CSC uses queue-length
display to give users realistic wait-time expectations (Section II-4).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.events import Event, EventKind, Severity
from ..core.metric import SeriesBatch
from .base import Collector, CollectorOutput

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.machine import Machine

__all__ = ["QueueStatsCollector"]


class QueueStatsCollector(Collector):
    """Queue depth + backlog sweep, plus scheduler lifecycle events."""

    metrics = ("queue.depth", "queue.backlog_nodeh")

    def __init__(self, interval_s: float = 60.0) -> None:
        super().__init__("queue_stats", interval_s)

    def collect(self, machine: "Machine", now: float) -> CollectorOutput:
        sched = machine.scheduler
        out = CollectorOutput(
            batches=[
                SeriesBatch.sweep(
                    "queue.depth", now, ["scheduler"],
                    [float(sched.queue_depth)],
                ),
                SeriesBatch.sweep(
                    "queue.backlog_nodeh", now, ["scheduler"],
                    [sched.backlog_node_hours()],
                ),
            ]
        )
        # surface scheduler lifecycle records as events for the log path
        for rec in sched.drain_events():
            out.events.append(
                Event(
                    time=rec.time,
                    component="scheduler",
                    kind=EventKind.SCHEDULER,
                    severity=Severity.INFO,
                    message=(
                        f"{rec.action} job={rec.job_id} app={rec.app} "
                        f"nodes={rec.n_nodes} {rec.detail}"
                    ).strip(),
                    fields={
                        "action": rec.action,
                        "job_id": rec.job_id,
                        "app": rec.app,
                        "n_nodes": rec.n_nodes,
                    },
                )
            )
        return out
