"""Log formatting paths: Cray-style split files vs unified forwarding.

Section IV-A: "By default, Cray separates log events into at least 20
different per-day log files, addressing different sources and/or types
of events ... placed into a multi-level directory hierarchy.  Time and
date formatting vary between files, some log events are multi-line ...
It is possible to forward the log stream off the system and thus bypass
some of the formatting and separation."

Both paths are implemented so the gap is demonstrable:

* :class:`CrayLogSplitter` — the vendor default: events scattered into
  per-kind/per-day "files" under a directory hierarchy, each file family
  using a *different* timestamp format, some multi-line;
  :func:`parse_split_logs` is the site-side parser that has to undo all
  of it (and documents what that costs);
* :class:`UnifiedLogForwarder` — the bypass: every event as one
  well-formed line with a uniform timestamp, trivially parseable.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Mapping

from ..core.events import Event, EventKind

__all__ = [
    "CrayLogSplitter",
    "UnifiedLogForwarder",
    "parse_split_logs",
    "ParsedLine",
]

# per-kind formatting quirks, mimicking the heterogeneity the paper laments
_FMT_EPOCH = "epoch"          # "1234.567 msg"
_FMT_BRACKET = "bracket"      # "[000123.456000] msg"
_FMT_TAGGED = "tagged"        # "T=123.456|sev=warning|msg"
_FMT_MULTILINE = "multiline"  # header line + indented detail lines

_KIND_FORMAT: dict[EventKind, str] = {
    EventKind.CONSOLE: _FMT_BRACKET,
    EventKind.HWERR: _FMT_MULTILINE,
    EventKind.ENV: _FMT_TAGGED,
    EventKind.NETWORK: _FMT_EPOCH,
    EventKind.FILESYSTEM: _FMT_EPOCH,
    EventKind.SCHEDULER: _FMT_TAGGED,
    EventKind.HEALTH: _FMT_EPOCH,
    EventKind.POWER: _FMT_TAGGED,
    EventKind.ALERT: _FMT_EPOCH,
    EventKind.ACTION: _FMT_EPOCH,
    EventKind.TEST: _FMT_EPOCH,
}

_DAY_S = 86400.0


class CrayLogSplitter:
    """The vendor-default path: many per-day, per-kind files."""

    def __init__(self) -> None:
        # path -> list of text lines; path mimics the directory hierarchy
        self.files: dict[str, list[str]] = {}

    def write(self, events: Iterable[Event]) -> int:
        n = 0
        for ev in events:
            day = int(ev.time // _DAY_S)
            path = f"p0/logs/day{day}/{ev.kind.value}/{ev.kind.value}-{day}.log"
            lines = self.files.setdefault(path, [])
            lines.extend(self._format(ev))
            n += 1
        return n

    @staticmethod
    def _format(ev: Event) -> list[str]:
        fmt = _KIND_FORMAT[ev.kind]
        if fmt == _FMT_EPOCH:
            return [f"{ev.time:.3f} {ev.component} {ev.message}"]
        if fmt == _FMT_BRACKET:
            return [f"[{ev.time:013.6f}] {ev.component}: {ev.message}"]
        if fmt == _FMT_TAGGED:
            return [
                f"T={ev.time:.3f}|sev={ev.severity.name.lower()}"
                f"|src={ev.component}|{ev.message}"
            ]
        # multiline: hwerr records carry indented detail lines
        detail = [
            f"    {k}: {v}" for k, v in sorted(ev.fields.items())
        ] or ["    (no detail)"]
        return [
            f"*** HWERR at {ev.time:.3f} on {ev.component}",
            f"    {ev.message}",
            *detail,
        ]

    def n_files(self) -> int:
        return len(self.files)


@dataclass(frozen=True, slots=True)
class ParsedLine:
    """What the site-side parser recovers from one split-log record."""

    time: float
    component: str
    message: str
    kind: str


_BRACKET_RE = re.compile(r"^\[(?P<t>[\d.]+)\] (?P<c>\S+): (?P<m>.*)$")
_EPOCH_RE = re.compile(r"^(?P<t>[\d.]+) (?P<c>\S+) (?P<m>.*)$")
_TAGGED_RE = re.compile(
    r"^T=(?P<t>[\d.]+)\|sev=\w+\|src=(?P<c>[^|]+)\|(?P<m>.*)$"
)
_HWERR_HEAD_RE = re.compile(
    r"^\*\*\* HWERR at (?P<t>[\d.]+) on (?P<c>\S+)$"
)


def parse_split_logs(files: Mapping[str, list[str]]) -> list[ParsedLine]:
    """Undo the splitter: parse every format family back to records.

    This is the "significant parsing to identify and combine the
    underlying data" the paper describes sites paying for.  Multi-line
    hwerr records are reassembled; unknown lines are skipped (and really
    do get silently lost at sites — which is the point).
    """
    out: list[ParsedLine] = []
    for path, lines in files.items():
        kind = path.rsplit("/", 1)[-1].split("-")[0]
        i = 0
        while i < len(lines):
            line = lines[i]
            m = _HWERR_HEAD_RE.match(line)
            if m:
                # reassemble: message is the first indented line
                msg = ""
                j = i + 1
                if j < len(lines) and lines[j].startswith("    "):
                    msg = lines[j].strip()
                    j += 1
                    while j < len(lines) and lines[j].startswith("    "):
                        j += 1
                out.append(
                    ParsedLine(float(m["t"]), m["c"], msg, kind)
                )
                i = j
                continue
            for rx in (_BRACKET_RE, _TAGGED_RE, _EPOCH_RE):
                m = rx.match(line)
                if m:
                    out.append(
                        ParsedLine(
                            float(m["t"]), m["c"].strip(), m["m"], kind
                        )
                    )
                    break
            i += 1
    out.sort(key=lambda p: p.time)
    return out


class UnifiedLogForwarder:
    """The bypass path: one stream, one format, nothing lost."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self._events: list[Event] = []

    def write(self, events: Iterable[Event]) -> int:
        n = 0
        for ev in events:
            self.lines.append(ev.syslog_line())
            self._events.append(ev)
            n += 1
        return n

    def parse(self) -> list[ParsedLine]:
        """Uniform parsing: one regex, no reassembly, no loss."""
        out = [
            ParsedLine(ev.time, ev.component, ev.message, ev.kind.value)
            for ev in self._events
        ]
        out.sort(key=lambda p: p.time)
        return out
