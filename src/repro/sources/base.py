"""Collector framework: periodic, synchronized sampling of the machine.

NCSA (Section II-2) "actively collects data from all major components and
subsystems ... at one minute intervals. Collection times are synchronized
across the entire system."  SNL collects network counters "periodically
(1 - 60 second intervals) and synchronously across a whole system."

A :class:`Collector` reads one telemetry surface of a
:class:`~repro.cluster.machine.Machine` and returns
:class:`~repro.core.metric.SeriesBatch`es (numeric) and/or
:class:`~repro.core.events.Event`s (discrete).  The
:class:`CollectionScheduler` fires every collector whose interval has
elapsed — all due collectors observe the *same* machine state at the
same timestamp (the synchronized-sweep property the analyses rely on) —
and publishes results onto any :class:`~repro.transport.base.Transport`
(flat bus, partitioned bus, or aggregator tree — the scheduler only
needs ``publish``).

Collectors are supervised: a raising or over-budget collector is
isolated (its error counted, the sweep continues with the remaining
collectors) and, when a :class:`~repro.core.lifecycle.Supervisor` is
attached, quarantined under deterministic backoff with half-open
probes — a broken data source can never take down collection of
everything else.
"""

from __future__ import annotations

import abc
import logging
import time as _time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING
from ..core.events import Event
from ..core.metric import SeriesBatch
from ..core.registry import MetricRegistry
from ..core.tracectx import HOP_COLLECT, TraceContext
from ..obs.hist import LatencyHistogram

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.machine import Machine
    from ..core.lifecycle import Supervisor
    from ..obs.trace import Tracer
    from ..runtime.executor import ExecutionModel
    from ..transport.base import Transport

_log = logging.getLogger(__name__)

__all__ = ["CollectorOutput", "Collector", "CollectionScheduler"]


def _sweep_thunk(c: "Collector", machine: "Machine", now: float):
    """One worker task: run ``collect`` and capture (out, exc, wall).

    Exceptions are captured, never raised — a failing collector must
    not abort the barrier; the coordinator applies the same isolation
    accounting it would have applied inline.  Per-collector tracer
    spans are skipped in workers (the span stack is main-thread-only);
    sweep wall time is measured in-worker so the overhead report still
    reflects each collector's own cost.
    """
    def run():
        t0 = _time.perf_counter()
        try:
            out = c.collect(machine, now)
        except Exception as exc:
            return None, exc, _time.perf_counter() - t0
        return out, None, _time.perf_counter() - t0
    return run


@dataclass(slots=True)
class CollectorOutput:
    """What one collector produced in one sweep."""

    batches: list[SeriesBatch] = field(default_factory=list)
    events: list[Event] = field(default_factory=list)

    def extend(self, other: "CollectorOutput") -> None:
        self.batches.extend(other.batches)
        self.events.extend(other.events)

    @property
    def n_samples(self) -> int:
        return sum(len(b) for b in self.batches)


class Collector(abc.ABC):
    """One data source sampled on a fixed interval."""

    #: dotted metric names this collector publishes (registry contract)
    metrics: tuple[str, ...] = ()

    def __init__(self, name: str, interval_s: float) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.name = name
        self.interval_s = float(interval_s)
        self.sweeps = 0
        self.samples_produced = 0
        self.collect_wall_s = 0.0   # measured overhead (Table I concern)
        self.errors = 0
        self.last_error: BaseException | None = None

    @abc.abstractmethod
    def collect(self, machine: "Machine", now: float) -> CollectorOutput:
        """Read the machine and produce one sweep of telemetry."""

    def verify_registered(self, registry: MetricRegistry) -> None:
        """Fail fast if this collector publishes undocumented metrics."""
        for m in self.metrics:
            registry.get(m)   # raises KeyError with guidance


class CollectionScheduler:
    """Fires collectors on their intervals and publishes the results.

    Numeric batches go to topic ``metrics.<metric-name>``; events go to
    ``events.<kind>``.  Timestamps come from the scheduler (the single
    global timebase) unless a collector stamps otherwise — exactly the
    "single global timestamp" discipline Section III-B argues for.
    """

    def __init__(
        self,
        bus: "Transport",
        registry: MetricRegistry | None = None,
        measure_overhead: bool = True,
        tracer: "Tracer | None" = None,
        supervisor: "Supervisor | None" = None,
        budget_s: float | None = None,
    ) -> None:
        self.bus = bus
        self.registry = registry
        self.measure_overhead = measure_overhead
        self.tracer = tracer
        #: optional Supervisor quarantining misbehaving collectors
        self.supervisor = supervisor
        #: wall-clock budget per sweep per collector; exceeding it is a
        #: supervised failure (the "hung collector" signature)
        self.budget_s = budget_s
        #: collector sweeps skipped while quarantined (diagnostic)
        self.quarantine_skips = 0
        #: when True, every published batch opens a TraceContext at the
        #: collection edge (set by the pipeline's freshness plane)
        self.trace_batches = False
        #: per-collector sweep-latency histograms (self-monitoring surface)
        self.latency: dict[str, LatencyHistogram] = {}
        self._collectors: list[Collector] = []
        self._next_due: list[float] = []

    def add(self, collector: Collector, phase: float = 0.0) -> Collector:
        """Register a collector; first fire at ``phase`` seconds."""
        if self.registry is not None:
            collector.verify_registered(self.registry)
        self._collectors.append(collector)
        self._next_due.append(phase)
        self.latency[collector.name] = LatencyHistogram()
        return collector

    @property
    def collectors(self) -> list[Collector]:
        return list(self._collectors)

    def poll(self, machine: "Machine", now: float, tick: int = 0,
             executor: "ExecutionModel | None" = None) -> CollectorOutput:
        """Run every due collector against the current machine state.

        ``tick`` is the pipeline's tick counter, recorded as the origin
        tick of each batch's trace context when tracing is on.

        A raising collector is isolated — its error is counted (and
        recorded with the supervisor when one is attached), but the
        sweep continues with the remaining collectors.  A quarantined
        collector is skipped entirely (its schedule still advances, so
        recovery does not trigger a catch-up burst).

        With a parallel ``executor`` the due collectors' ``collect``
        calls fan out across workers — pure reads of the frozen machine
        state — and everything stateful (schedule advance, supervision
        records, publish, accounting) still happens here, in due order,
        after the barrier.  Serial behaviour is bit-identical to the
        historic single-loop form.
        """
        total = CollectorOutput()
        tracer = self.tracer
        sup = self.supervisor
        timing = self.measure_overhead or self.budget_s is not None

        # phase 1: decide who is due (advancing schedules + honouring
        # quarantine) without running anyone — the sweep set must be
        # fixed before any fan-out
        due: list[tuple[Collector, str]] = []
        for i, c in enumerate(self._collectors):
            if now + 1e-9 < self._next_due[i]:
                continue
            # schedule strictly forward, skipping missed slots
            while self._next_due[i] <= now + 1e-9:
                self._next_due[i] += c.interval_s
            key = "collector:" + c.name if sup is not None else ""
            if sup is not None and not sup.should_run(key, now):
                self.quarantine_skips += 1
                continue
            due.append((c, key))

        parallel = (executor is not None and executor.parallel
                    and len(due) > 1)
        if parallel:
            results = executor.map_ordered(
                [_sweep_thunk(c, machine, now) for c, _ in due]
            )

        # phase 2: accounting + publish, strictly in due order
        for j, (c, key) in enumerate(due):
            if parallel:
                out, exc, wall = results[j]
            else:
                t0 = _time.perf_counter() if timing else 0.0
                try:
                    if tracer is not None and tracer.enabled:
                        with tracer.span("collect", collector=c.name):
                            out = c.collect(machine, now)
                    else:
                        out = c.collect(machine, now)
                    exc = None
                except Exception as e:
                    out, exc = None, e
                wall = (_time.perf_counter() - t0) if timing else 0.0
            if exc is not None:
                c.errors += 1
                c.last_error = exc
                _log.warning("collector %r raised during sweep: %r",
                             c.name, exc)
                if sup is not None:
                    sup.record(key, False, now,
                               reason=f"raised {type(exc).__name__}")
                continue
            if self.measure_overhead:
                c.collect_wall_s += wall
                self.latency[c.name].record(wall)
            if (self.budget_s is not None and wall > self.budget_s):
                # over budget: the hung-collector signature — results
                # still count, but supervision sees a failure
                c.errors += 1
                if sup is not None:
                    sup.record(key, False, now,
                               reason=f"over budget ({wall:.3f}s)")
            elif sup is not None:
                sup.record(key, True, now)
            c.sweeps += 1
            c.samples_produced += out.n_samples
            for b in out.batches:
                if self.trace_batches:
                    # inlined TraceContext.start(now, tick=tick) — one
                    # per published batch on the hot sweep loop
                    tr = TraceContext.__new__(TraceContext)
                    tr.origin_tick = tick
                    tr.hops = [[HOP_COLLECT, now, now, 1]]
                    tr.truncated = 0
                    b.trace = tr
                self.bus.publish(f"metrics.{b.metric}", b, source=c.name)
            for e in out.events:
                self.bus.publish(f"events.{e.kind.value}", e, source=c.name)
            total.extend(out)
        return total

    def overhead_report(self) -> dict[str, dict[str, float]]:
        """Per-collector cost accounting (the documented-impact ask)."""
        return {
            c.name: {
                "sweeps": c.sweeps,
                "samples": c.samples_produced,
                "wall_s": c.collect_wall_s,
                "wall_per_sweep_ms": (
                    1000.0 * c.collect_wall_s / c.sweeps if c.sweeps else 0.0
                ),
            }
            for c in self._collectors
        }
