"""SEDC-class environmental collection: temperatures, power, energy.

Cray's System Environment Data Collections (SEDC) streams cabinet and
node environmental telemetry; KAUST's power work and NERSC's facility
monitoring both sit on this class of source.  The collector sweeps node
temperature/power/energy plus GPU temperatures when the machine has
GPUs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.metric import SeriesBatch
from .base import Collector, CollectorOutput

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.machine import Machine

__all__ = ["SedcCollector"]


class SedcCollector(Collector):
    """Node/GPU environmental sweep (SEDC analog)."""

    metrics = (
        "node.temp_c",
        "node.power_w",
        "node.energy_j",
        "gpu.temp_c",
        "gpu.ecc_dbe",
        "gpu.health",
    )

    def __init__(self, interval_s: float = 60.0) -> None:
        super().__init__("sedc", interval_s)

    def collect(self, machine: "Machine", now: float) -> CollectorOutput:
        names = machine.nodes.names
        batches = [
            SeriesBatch.sweep("node.temp_c", now, names,
                              machine.nodes.temp_c.copy()),
            SeriesBatch.sweep("node.power_w", now, names,
                              machine.nodes.power_w.copy()),
            SeriesBatch.sweep("node.energy_j", now, names,
                              machine.nodes.energy_j.copy()),
        ]
        gpus = machine.gpus
        if gpus is not None and gpus.n:
            gnames = gpus.names
            batches.extend(
                [
                    SeriesBatch.sweep("gpu.temp_c", now, gnames,
                                      gpus.temp_c.copy()),
                    SeriesBatch.sweep("gpu.ecc_dbe", now, gnames,
                                      gpus.ecc_dbe.astype(float)),
                    SeriesBatch.sweep("gpu.health", now, gnames,
                                      gpus.health.clip(0.0, 1.0)),
                ]
            )
        return CollectorOutput(batches=batches)
