"""Applications and jobs: the load the monitored machine carries.

Several of the paper's detection stories hinge on *application behaviour
being repeatable*:

* KAUST (Section II-7): "the power profiles of applications were
  repeatable enough that they can ... identify problems with the system
  and applications" — so an :class:`AppProfile` deterministically maps
  job phase to per-node CPU demand (and hence power), with only small
  run-to-run noise.
* HLRS (Section II-10): victim applications show high *runtime
  variability* under HSN contention while aggressors do not — so a job's
  progress rate here degrades when its communication or I/O is throttled
  by shared-resource contention, making runtime an emergent, honest
  signal.
* NCSA Figure 4 attributes an aggregate I/O spike to one job — so I/O
  demand is attributed per job by the filesystem model.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .filesystem import IODemand
from .network import Flow

__all__ = [
    "CommPattern",
    "Phase",
    "AppProfile",
    "JobState",
    "Job",
    "JobGenerator",
    "APP_LIBRARY",
]


class CommPattern(str, enum.Enum):
    NONE = "none"            # embarrassingly parallel
    RING = "ring"            # nearest-neighbor 1D
    HALO3D = "halo3d"        # stencil halo exchange (approximated)
    ALLTOALL = "alltoall"    # transpose/FFT-style global exchange
    HOTSPOT = "hotspot"      # reduction to a root (I/O-master pattern)


@dataclass(frozen=True, slots=True)
class Phase:
    """One phase of an application's execution.

    ``frac``          fraction of total work done in this phase.
    ``cpu_util``      per-node CPU utilization demanded.
    ``comm_Bps``      per-node injection demand, bytes/s.
    ``read_Bps``      per-node filesystem read demand, bytes/s.
    ``write_Bps``     per-node filesystem write demand, bytes/s.
    ``md_ops_s``      per-node metadata ops/s.
    """

    frac: float
    cpu_util: float = 0.9
    comm_Bps: float = 0.0
    read_Bps: float = 0.0
    write_Bps: float = 0.0
    md_ops_s: float = 0.0


@dataclass(frozen=True, slots=True)
class AppProfile:
    """A named application with a repeatable resource signature."""

    name: str
    phases: tuple[Phase, ...]
    comm_pattern: CommPattern = CommPattern.NONE
    work_seconds: float = 3600.0      # nominal runtime, uncontended
    comm_weight: float = 0.0          # fraction of progress gated on comm
    io_weight: float = 0.0            # fraction gated on filesystem
    runtime_noise: float = 0.02       # intrinsic run-to-run variability
    typical_nodes: tuple[int, ...] = (32, 64, 128)

    def __post_init__(self) -> None:
        total = sum(p.frac for p in self.phases)
        if not np.isclose(total, 1.0, atol=1e-6):
            raise ValueError(
                f"{self.name}: phase fractions sum to {total}, expected 1"
            )
        if self.comm_weight + self.io_weight > 1.0:
            raise ValueError("comm_weight + io_weight must be <= 1")

    def phase_at(self, progress_frac: float) -> Phase:
        """The phase active at ``progress_frac`` of total work in [0,1)."""
        x = min(max(progress_frac, 0.0), 0.999999)
        acc = 0.0
        for p in self.phases:
            acc += p.frac
            if x < acc:
                return p
        return self.phases[-1]


class JobState(str, enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"


class Job:
    """One batch job instance.

    Generated jobs get their IDs from the owning
    :class:`JobGenerator` (per-machine, so two simulated sites in one
    process never interleave job identities); the class counter is only
    the fallback for directly constructed jobs without an explicit
    ``job_id``.
    """

    _counter = itertools.count(1)

    def __init__(
        self,
        app: AppProfile,
        n_nodes: int,
        submit_time: float,
        walltime_req: float | None = None,
        seed: int = 0,
        job_id: int | None = None,
        user: str = "user0",
    ) -> None:
        self.id = job_id if job_id is not None else next(Job._counter)
        self.app = app
        self.n_nodes = int(n_nodes)
        self.submit_time = float(submit_time)
        self.user = user
        rng = np.random.default_rng(seed ^ (self.id * 0x9E3779B1))
        self._rng = rng
        noise = 1.0 + rng.normal(0.0, app.runtime_noise)
        self.work_seconds = app.work_seconds * max(noise, 0.5)
        self.walltime_req = (
            float(walltime_req)
            if walltime_req is not None
            else self.work_seconds * 2.0
        )
        self.state = JobState.PENDING
        self.nodes: list[str] = []
        self.start_time: float | None = None
        self.end_time: float | None = None
        self.progress = 0.0          # seconds of work completed
        # per-node utilization multipliers; faults can skew them to model
        # load imbalance (Figure 3)
        self.node_util_scale: np.ndarray | None = None

    # -- lifecycle --------------------------------------------------------------

    def start(self, time: float, nodes: Sequence[str]) -> None:
        if self.state is not JobState.PENDING:
            raise RuntimeError(f"job {self.id} cannot start from {self.state}")
        self.state = JobState.RUNNING
        self.start_time = float(time)
        self.nodes = list(nodes)
        self.node_util_scale = np.ones(len(self.nodes))

    def finish(self, time: float, state: JobState = JobState.COMPLETED) -> None:
        self.state = state
        self.end_time = float(time)

    @property
    def runtime(self) -> float | None:
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time

    @property
    def progress_frac(self) -> float:
        return min(self.progress / self.work_seconds, 1.0)

    # -- fault hooks ----------------------------------------------------------------

    def inject_imbalance(self, frac_busy: float, wait_util: float = 0.15) -> None:
        """Concentrate the work on a contiguous ``frac_busy`` of ranks.

        The overloaded ranks stay at full utilization; the rest finish
        their (small) share early and idle at synchronization points at
        ``wait_util``.  With packed placement the busy block maps onto a
        subset of cabinets, producing the KAUST Figure 3 signature:
        per-cabinet power variation of ~3x and markedly lower total
        system draw, while job progress slows to the aggregate rate.
        """
        if self.node_util_scale is None:
            raise RuntimeError("job not running")
        n_busy = max(1, int(len(self.nodes) * frac_busy))
        self.node_util_scale[:] = wait_util   # waiters idle at barriers
        self.node_util_scale[:n_busy] = 1.0   # overloaded contiguous block

    def clear_imbalance(self) -> None:
        if self.node_util_scale is not None:
            self.node_util_scale[:] = 1.0

    # -- per-step demand generation -----------------------------------------------------

    def demanded_util(self) -> np.ndarray:
        """Per-assigned-node CPU utilization demanded this step."""
        phase = self.app.phase_at(self.progress_frac)
        base = np.full(len(self.nodes), phase.cpu_util)
        if self.node_util_scale is not None:
            base = base * self.node_util_scale
        return base

    def flows(self, dt: float, max_pairs: int = 64) -> list[Flow]:
        """Traffic demands for this step, per the app's comm pattern."""
        phase = self.app.phase_at(self.progress_frac)
        rate = phase.comm_Bps
        if rate <= 0 or len(self.nodes) < 2:
            return []
        pattern = self.app.comm_pattern
        nodes = self.nodes
        n = len(nodes)
        per_node_bytes = rate * dt
        if pattern is CommPattern.RING:
            return [
                Flow(nodes[i], nodes[(i + 1) % n], per_node_bytes)
                for i in range(n)
            ]
        if pattern is CommPattern.HALO3D:
            # approximate a 3D stencil with +-1, +-k, +-k^2 neighbors in
            # allocation order; six exchanges per node, bytes split evenly
            k = max(1, round(n ** (1 / 3)))
            out: list[Flow] = []
            strides = (1, k, k * k)
            per_dir = per_node_bytes / 6.0
            for i in range(n):
                for s in strides:
                    out.append(Flow(nodes[i], nodes[(i + s) % n], per_dir))
                    out.append(Flow(nodes[i], nodes[(i - s) % n], per_dir))
            return out
        if pattern is CommPattern.ALLTOALL:
            # sample a bounded set of pairs carrying the aggregate volume,
            # so cost stays O(max_pairs) at any job size
            total_bytes = per_node_bytes * n
            n_pairs = min(max_pairs, n * (n - 1))
            per_pair = total_bytes / n_pairs
            out = []
            for _ in range(n_pairs):
                i, j = self._rng.choice(n, size=2, replace=False)
                out.append(Flow(nodes[i], nodes[j], per_pair))
            return out
        if pattern is CommPattern.HOTSPOT:
            root = nodes[0]
            return [
                Flow(nodes[i], root, per_node_bytes)
                for i in range(1, n)
            ]
        return []

    def io_demand(self, dt: float, n_ost: int) -> IODemand | None:
        """Filesystem demand for this step (or None when idle on I/O)."""
        phase = self.app.phase_at(self.progress_frac)
        n = len(self.nodes)
        read_b = phase.read_Bps * n * dt
        write_b = phase.write_Bps * n * dt
        md = phase.md_ops_s * n * dt
        if read_b <= 0 and write_b <= 0 and md <= 0:
            return None
        # stripe over a deterministic subset proportional to job size
        width = max(1, min(n_ost, n // 8 or 1))
        start = self.id % n_ost
        stripe = tuple((start + i) % n_ost for i in range(width))
        return IODemand(self.id, read_b, write_b, md, stripe)

    def advance(
        self,
        dt: float,
        comm_eff: float = 1.0,
        io_eff: float = 1.0,
        cpu_speed: float = 1.0,
    ) -> None:
        """Advance job progress given achieved resource efficiencies.

        ``comm_eff`` / ``io_eff`` in [0, 1] are the achieved fractions of
        demanded communication / I/O this step; ``cpu_speed`` is the
        effective frequency fraction of the job's nodes (p-state caps
        slow the compute-bound portion — the SNL power-sweep knob).
        Imbalanced jobs progress at the aggregate rate of their ranks.
        """
        app = self.app
        balance = (
            float(self.node_util_scale.mean())
            if self.node_util_scale is not None and len(self.node_util_scale)
            else 1.0
        )
        cpu_frac = 1.0 - app.comm_weight - app.io_weight
        speed = (
            cpu_frac * balance * cpu_speed
            + app.comm_weight * min(comm_eff, balance)
            + app.io_weight * min(io_eff, balance)
        )
        self.progress += dt * speed

    @property
    def done(self) -> bool:
        return self.progress >= self.work_seconds


def _library() -> dict[str, AppProfile]:
    """Application mix motivated by the paper's workloads.

    Chosen to span the detection scenarios: a compute-bound code (power
    signature work), a halo-exchange code and an all-to-all code
    (network congestion, aggressor/victim), an I/O-heavy checkpointing
    code (filesystem stories), and a metadata-hammering code.
    """
    lib = {}
    lib["lammps"] = AppProfile(
        name="lammps",
        phases=(
            Phase(0.05, cpu_util=0.4, read_Bps=20e6),        # setup/read
            Phase(0.90, cpu_util=0.95, comm_Bps=80e6),       # MD steps
            Phase(0.05, cpu_util=0.3, write_Bps=50e6),       # output
        ),
        comm_pattern=CommPattern.HALO3D,
        work_seconds=3600.0,
        comm_weight=0.25,
        typical_nodes=(32, 64, 128),
    )
    lib["qmc"] = AppProfile(  # compute-bound, flat high power (KAUST-style)
        name="qmc",
        phases=(Phase(1.0, cpu_util=0.98, comm_Bps=5e6),),
        comm_pattern=CommPattern.RING,
        work_seconds=5400.0,
        comm_weight=0.05,
        typical_nodes=(64, 128, 256),
    )
    lib["cfd_fft"] = AppProfile(  # all-to-all heavy: the classic aggressor
        name="cfd_fft",
        phases=(
            Phase(0.1, cpu_util=0.7, read_Bps=40e6),
            Phase(0.8, cpu_util=0.85, comm_Bps=400e6),
            Phase(0.1, cpu_util=0.4, write_Bps=80e6),
        ),
        comm_pattern=CommPattern.ALLTOALL,
        work_seconds=2700.0,
        comm_weight=0.55,
        typical_nodes=(64, 128),
    )
    lib["climate"] = AppProfile(  # periodic checkpointer (Figure 4 spike)
        name="climate",
        phases=(
            Phase(0.22, cpu_util=0.9, comm_Bps=60e6),
            Phase(0.03, cpu_util=0.3, write_Bps=900e6, md_ops_s=5.0),
            Phase(0.22, cpu_util=0.9, comm_Bps=60e6),
            Phase(0.03, cpu_util=0.3, write_Bps=900e6, md_ops_s=5.0),
            Phase(0.22, cpu_util=0.9, comm_Bps=60e6),
            Phase(0.03, cpu_util=0.3, write_Bps=900e6, md_ops_s=5.0),
            Phase(0.22, cpu_util=0.9, comm_Bps=60e6),
            Phase(0.03, cpu_util=0.3, write_Bps=900e6, md_ops_s=5.0),
        ),
        comm_pattern=CommPattern.HALO3D,
        work_seconds=7200.0,
        comm_weight=0.15,
        io_weight=0.15,
        typical_nodes=(32, 64),
    )
    lib["genomics"] = AppProfile(  # metadata hammer, victim-prone
        name="genomics",
        phases=(
            Phase(0.5, cpu_util=0.6, read_Bps=150e6, md_ops_s=40.0),
            Phase(0.5, cpu_util=0.8, write_Bps=60e6, md_ops_s=20.0),
        ),
        comm_pattern=CommPattern.NONE,
        work_seconds=1800.0,
        io_weight=0.5,
        typical_nodes=(8, 16, 32),
    )
    return lib


APP_LIBRARY: dict[str, AppProfile] = _library()


class JobGenerator:
    """Poisson job arrivals drawn from an application mix."""

    def __init__(
        self,
        apps: Sequence[AppProfile] | None = None,
        weights: Sequence[float] | None = None,
        mean_interarrival_s: float = 300.0,
        max_nodes: int | None = None,
        seed: int = 0,
    ) -> None:
        self.apps = list(apps) if apps else list(APP_LIBRARY.values())
        if weights is None:
            weights = [1.0] * len(self.apps)
        w = np.asarray(weights, dtype=float)
        self.weights = w / w.sum()
        self.mean_interarrival_s = float(mean_interarrival_s)
        self.max_nodes = max_nodes
        self._rng = np.random.default_rng(seed)
        self._next_arrival = float(
            self._rng.exponential(self.mean_interarrival_s)
        )
        self.seed = seed
        # job IDs are per-generator, not process-global: a second
        # machine in the same process (federation) gets the same ID
        # sequence a solo run would, keeping job identity — and the
        # ID-derived per-job RNG streams — site-local and reproducible
        self._ids = itertools.count(1)

    def poll(self, now: float) -> list[Job]:
        """Jobs submitted up to ``now`` since the last poll."""
        out: list[Job] = []
        while self._next_arrival <= now:
            app = self._rng.choice(self.apps, p=self.weights)
            n_nodes = int(self._rng.choice(app.typical_nodes))
            if self.max_nodes is not None:
                n_nodes = min(n_nodes, self.max_nodes)
            out.append(
                Job(
                    app,
                    n_nodes,
                    submit_time=self._next_arrival,
                    seed=self.seed,
                    job_id=next(self._ids),
                    user=f"user{int(self._rng.integers(0, 8))}",
                )
            )
            self._next_arrival += float(
                self._rng.exponential(self.mean_interarrival_s)
            )
        return out
