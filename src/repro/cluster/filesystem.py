"""Lustre-like shared parallel filesystem model.

NCSA's Blue Waters story (Section II-2) centers on probing "each
independent filesystem component" — object storage targets (OSTs) for
file I/O and the metadata server (MDS) for metadata operations — because
"performance problems in any of the three large shared Lustre file
systems can severely impact job performance".  The model here provides:

* striped I/O service across OSTs with per-OST bandwidth limits,
* an MDS with a bounded metadata-op rate,
* a load-dependent latency model (latency diverges as an OST or the MDS
  approaches saturation — the signal NCSA's probes surface),
* fault modes: *slow OST* (degraded bandwidth + inflated latency) and
  *filling OST* (capacity exhaustion),
* the probe API the NCSA-style collector calls
  (:meth:`LustreFS.probe_io_latency`, :meth:`LustreFS.probe_md_latency`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["IODemand", "LustreFS"]


@dataclass(frozen=True, slots=True)
class IODemand:
    """One job's filesystem demand over a step interval."""

    job_id: int
    read_bytes: float
    write_bytes: float
    md_ops: float
    stripe: tuple[int, ...] = ()   # OST indices the job stripes over; ()
    # means "all OSTs" (wide striping)


class LustreFS:
    """One shared filesystem: ``n_ost`` OSTs plus one MDS."""

    def __init__(
        self,
        name: str = "scratch",
        n_ost: int = 24,
        ost_bw_Bps: float = 5e9,
        ost_capacity_bytes: float = 100e12,
        mds_ops_per_s: float = 50_000.0,
        base_io_latency_s: float = 0.004,
        base_md_latency_s: float = 0.002,
        seed: int = 0,
    ) -> None:
        self.name = name
        self.n_ost = int(n_ost)
        self.ost_bw_Bps = float(ost_bw_Bps)
        self.ost_capacity_bytes = float(ost_capacity_bytes)
        self.mds_ops_per_s = float(mds_ops_per_s)
        self.base_io_latency_s = float(base_io_latency_s)
        self.base_md_latency_s = float(base_md_latency_s)
        self._rng = np.random.default_rng(seed)

        self.ost_used_bytes = np.full(n_ost, 0.35 * ost_capacity_bytes)
        # per-OST health multiplier on bandwidth (1 healthy, <1 slow)
        self.ost_bw_factor = np.ones(n_ost)
        self.mds_rate_factor = 1.0

        # last-step served rates (collector surface)
        self.ost_read_Bps = np.zeros(n_ost)
        self.ost_write_Bps = np.zeros(n_ost)
        self.ost_util = np.zeros(n_ost)
        self.mds_util = 0.0
        # attribution: job_id -> (read_Bps, write_Bps) last step
        self.job_io_Bps: dict[int, tuple[float, float]] = {}
        # per-job achieved fraction of demanded I/O (slowdown signal)
        self.job_io_fraction: dict[int, float] = {}

    # -- fault hooks -------------------------------------------------------------

    def set_slow_ost(self, ost: int, bw_factor: float) -> None:
        """Degrade one OST to ``bw_factor`` of nominal bandwidth."""
        if not (0.0 < bw_factor <= 1.0):
            raise ValueError("bw_factor must be in (0, 1]")
        self.ost_bw_factor[ost] = bw_factor

    def heal_ost(self, ost: int) -> None:
        self.ost_bw_factor[ost] = 1.0

    def set_mds_degraded(self, rate_factor: float) -> None:
        self.mds_rate_factor = float(rate_factor)

    # -- service step ---------------------------------------------------------------

    def step(self, dt: float, demands: Sequence[IODemand]) -> None:
        """Serve aggregate demand for ``dt`` seconds.

        Demand is spread across each job's stripe; when aggregate demand
        on an OST exceeds its (possibly degraded) capacity, every job on
        that OST is throttled proportionally — shared-resource contention
        is exactly the cross-job interference the paper's monitoring
        targets.
        """
        offered_read = np.zeros(self.n_ost)
        offered_write = np.zeros(self.n_ost)
        shares: list[tuple[IODemand, np.ndarray, float, float]] = []

        for d in demands:
            stripe = np.asarray(
                d.stripe if d.stripe else range(self.n_ost), dtype=np.int64
            )
            per_r = d.read_bytes / dt / len(stripe)
            per_w = d.write_bytes / dt / len(stripe)
            offered_read[stripe] += per_r
            offered_write[stripe] += per_w
            shares.append((d, stripe, per_r, per_w))

        cap = self.ost_bw_Bps * self.ost_bw_factor
        offered_total = offered_read + offered_write
        with np.errstate(divide="ignore", invalid="ignore"):
            scale = np.where(
                offered_total > cap, cap / np.maximum(offered_total, 1e-9), 1.0
            )
        self.ost_read_Bps = offered_read * scale
        self.ost_write_Bps = offered_write * scale
        self.ost_util = np.where(
            cap > 0, np.minimum(offered_total / cap, 1.0), 1.0
        )

        # capacity fill from writes actually served
        self.ost_used_bytes += self.ost_write_Bps * dt
        np.minimum(
            self.ost_used_bytes, self.ost_capacity_bytes,
            out=self.ost_used_bytes,
        )

        # MDS
        md_offered = sum(d.md_ops for d in demands) / dt
        md_cap = self.mds_ops_per_s * self.mds_rate_factor
        self.mds_util = min(md_offered / md_cap, 1.0) if md_cap > 0 else 1.0

        # per-job attribution
        self.job_io_Bps = {}
        self.job_io_fraction = {}
        for d, stripe, per_r, per_w in shares:
            r = float((per_r * scale[stripe]).sum())
            w = float((per_w * scale[stripe]).sum())
            self.job_io_Bps[d.job_id] = (r, w)
            demanded = (d.read_bytes + d.write_bytes) / dt
            self.job_io_fraction[d.job_id] = (
                (r + w) / demanded if demanded > 0 else 1.0
            )

    # -- probe API (the NCSA collector path) ---------------------------------------------

    def _latency(self, base: float, util: float) -> float:
        """Queueing-style latency: base / (1 - rho) with jitter."""
        rho = min(float(util), 0.98)
        lat = base / (1.0 - rho)
        return float(lat * self._rng.uniform(0.95, 1.05))

    def probe_io_latency(self, ost: int) -> float:
        """Latency of a small read against one OST, in seconds."""
        base = self.base_io_latency_s / self.ost_bw_factor[ost]
        return self._latency(base, self.ost_util[ost])

    def probe_md_latency(self) -> float:
        """Latency of one metadata op (stat/create) against the MDS."""
        base = self.base_md_latency_s / max(self.mds_rate_factor, 1e-3)
        return self._latency(base, self.mds_util)

    # -- aggregate views -----------------------------------------------------------------------

    def read_Bps_total(self) -> float:
        return float(self.ost_read_Bps.sum())

    def write_Bps_total(self) -> float:
        return float(self.ost_write_Bps.sum())

    def fill_fractions(self) -> np.ndarray:
        return self.ost_used_bytes / self.ost_capacity_bytes

    def ost_names(self) -> list[str]:
        return [f"{self.name}-ost{i}" for i in range(self.n_ost)]
