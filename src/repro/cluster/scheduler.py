"""Batch scheduler: queue, backfill, placement policies, health gating.

Three paper stories live here:

* **Figure 1 (NCSA)** — Topologically-Aware Scheduling: placing a job's
  nodes close together in the interconnect changed shared-network
  utilization system-wide.  :class:`TopoAwarePlacement` packs allocations
  into as few dragonfly groups / torus regions as possible;
  :class:`ScatteredPlacement` is the pre-TAS baseline.
* **CSCS (Section II-5)** — "no job should start on a node with a
  problem, and a problem should only be encountered by at most one batch
  job": the scheduler accepts a *health gate* callable consulted per node
  at job start, and the CSCS policy wires pre-/post-job health checks to
  it.
* **NERSC / CSC (Sections II-3/4)** — queue depth and backlog monitoring:
  the scheduler exposes queue depth and outstanding node-hours, and a
  *queue blockage* fault mode stops launches (NERSC's "blockage in the
  queue, quickly filling it").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

import numpy as np

from .topology import Topology
from .workload import Job, JobState

__all__ = [
    "PlacementPolicy",
    "ScatteredPlacement",
    "PackedPlacement",
    "TopoAwarePlacement",
    "SchedulerEvent",
    "BatchScheduler",
]


class PlacementPolicy(Protocol):
    """Chooses nodes for a job from the free pool."""

    name: str

    def place(
        self, topo: Topology, free: list[str], n_nodes: int, rng: np.random.Generator
    ) -> list[str] | None:
        """Return the chosen nodes, or None when placement is impossible."""


class ScatteredPlacement:
    """Pre-TAS baseline: nodes drawn uniformly from the free pool.

    Fragmented allocations spread a job's traffic across many groups and
    global links, maximizing sharing (and contention) with other jobs.
    """

    name = "scattered"

    def place(self, topo, free, n_nodes, rng):
        if len(free) < n_nodes:
            return None
        picks = rng.choice(len(free), size=n_nodes, replace=False)
        return [free[i] for i in sorted(picks)]


class PackedPlacement:
    """First-fit in node order: contiguous cnames, ignorant of topology."""

    name = "packed"

    def place(self, topo, free, n_nodes, rng):
        if len(free) < n_nodes:
            return None
        return sorted(free)[:n_nodes]


class TopoAwarePlacement:
    """TAS: fill whole topological groups before spilling to the next.

    Nodes are bucketed by their topology group (dragonfly electrical
    group / torus x-slab); the job takes groups with the most free nodes
    first, so most of its traffic stays on intra-group links and the
    shared global links carry less cross-job interference.
    """

    name = "tas"

    def place(self, topo, free, n_nodes, rng):
        if len(free) < n_nodes:
            return None
        by_group: dict[int, list[str]] = {}
        for n in free:
            by_group.setdefault(topo.node_group[n], []).append(n)
        # fullest groups first; deterministic tiebreak on group id
        groups = sorted(
            by_group.items(), key=lambda kv: (-len(kv[1]), kv[0])
        )
        chosen: list[str] = []
        for _, nodes in groups:
            nodes.sort()
            take = min(len(nodes), n_nodes - len(chosen))
            chosen.extend(nodes[:take])
            if len(chosen) == n_nodes:
                return chosen
        return None  # unreachable given the len check above


@dataclass(frozen=True, slots=True)
class SchedulerEvent:
    """Job lifecycle record (becomes an ``EventKind.SCHEDULER`` event)."""

    time: float
    action: str          # submit | start | end | fail | cancel | held
    job_id: int
    app: str
    n_nodes: int
    detail: str = ""


class BatchScheduler:
    """FCFS + conservative backfill over a fixed node inventory."""

    def __init__(
        self,
        topo: Topology,
        placement: PlacementPolicy | None = None,
        health_gate: Callable[[str], bool] | None = None,
        admission_control: Callable[[Job], bool] | None = None,
        backfill: bool = True,
        seed: int = 0,
    ) -> None:
        self.topo = topo
        self.placement = placement or ScatteredPlacement()
        self.health_gate = health_gate
        # whole-job admission hook (power budgets, maintenance windows);
        # consulted before placement — Section III-C's "scheduling and
        # allocation based on application and resource state"
        self.admission_control = admission_control
        self.backfill = backfill
        self._rng = np.random.default_rng(seed)

        self.queue: list[Job] = []
        self.running: list[Job] = []
        self.completed: list[Job] = []
        self.allocated: dict[str, int] = {}   # node -> job id
        self.events: list[SchedulerEvent] = []
        self.blocked = False   # queue-blockage fault: nothing launches
        self.unavailable: set[str] = set()  # nodes drained by operators

    # -- external surface -----------------------------------------------------

    def submit(self, job: Job, now: float) -> None:
        self.queue.append(job)
        self.events.append(
            SchedulerEvent(now, "submit", job.id, job.app.name, job.n_nodes)
        )

    def drain_node(self, node: str) -> None:
        """Take a node out of service (response action: mark-down)."""
        self.unavailable.add(node)

    def return_node(self, node: str) -> None:
        self.unavailable.discard(node)

    def set_blocked(self, blocked: bool) -> None:
        self.blocked = blocked

    @property
    def queue_depth(self) -> int:
        return len(self.queue)

    def backlog_node_hours(self) -> float:
        """Outstanding demand: sum over queued jobs of nodes x walltime."""
        return sum(j.n_nodes * j.walltime_req / 3600.0 for j in self.queue)

    def free_nodes(self) -> list[str]:
        return [
            n
            for n in self.topo.nodes
            if n not in self.allocated and n not in self.unavailable
        ]

    # -- scheduling cycle --------------------------------------------------------

    def tick(self, now: float) -> list[Job]:
        """Run one scheduling cycle; returns jobs started this cycle."""
        if self.blocked:
            return []
        started: list[Job] = []
        free = self.free_nodes()
        i = 0
        blocked_head_size: int | None = None
        while i < len(self.queue):
            job = self.queue[i]
            if blocked_head_size is not None:
                if not self.backfill or job.n_nodes >= blocked_head_size:
                    i += 1
                    continue
            placed = self._try_start(job, free, now)
            if placed:
                started.append(job)
                self.queue.pop(i)
                free = [n for n in free if n not in set(job.nodes)]
                continue
            if blocked_head_size is None:
                # FCFS head can't start; only strictly smaller jobs may
                # backfill around it (conservative, avoids starvation)
                blocked_head_size = job.n_nodes
            i += 1
        return started

    def _try_start(self, job: Job, free: list[str], now: float) -> bool:
        if self.admission_control is not None and not self.admission_control(job):
            return False
        candidates = free
        if self.health_gate is not None:
            candidates = [n for n in free if self.health_gate(n)]
        nodes = self.placement.place(
            self.topo, candidates, job.n_nodes, self._rng
        )
        if nodes is None:
            return False
        job.start(now, nodes)
        for n in nodes:
            self.allocated[n] = job.id
        self.running.append(job)
        self.events.append(
            SchedulerEvent(
                now, "start", job.id, job.app.name, job.n_nodes,
                detail=f"placement={self.placement.name}",
            )
        )
        return True

    def complete(self, job: Job, now: float,
                 state: JobState = JobState.COMPLETED) -> None:
        """Finish a running job and release its nodes."""
        job.finish(now, state)
        self.running.remove(job)
        self.completed.append(job)
        for n in job.nodes:
            self.allocated.pop(n, None)
        action = "end" if state is JobState.COMPLETED else state.value
        self.events.append(
            SchedulerEvent(now, action, job.id, job.app.name, job.n_nodes)
        )

    def kill_jobs_on_node(self, node: str, now: float) -> list[Job]:
        """Fail whatever is running on ``node`` (node crash semantics)."""
        victims = [j for j in self.running if node in j.nodes]
        for j in victims:
            self.complete(j, now, JobState.FAILED)
        return victims

    def drain_events(self) -> list[SchedulerEvent]:
        out = self.events
        self.events = []
        return out
