"""HSN traffic engine: routing, per-link counters, congestion, BER.

SNL's approach (Section II-9) derives congestion levels and *regions*
from functional combinations of HSN performance counters collected
synchronously across the whole system.  This module produces exactly the
counters that analysis consumes:

* ``link.traffic_flits`` — cumulative flits moved per link,
* ``link.stall_flits``   — cumulative credit-stall flits per link,
* ``link.ber``           — current bit-error rate per link (ALCF trends),
* ``node.inject_bw_frac``— achieved injection bandwidth per node as a
  fraction of NIC line rate (the Figure 1 quantity).

The contention model is deliberately simple but preserves the behaviour
the paper's stories rely on: offered load beyond a link's capacity stalls
senders (stall flits grow super-linearly near saturation, M/M/1-style),
and flows sharing an oversubscribed link see proportionally reduced
throughput — so victim applications on shared links slow down, which is
what HLRS's aggressor/victim classifier detects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .topology import NoRouteError, Topology

__all__ = ["Flow", "NetworkState", "FLIT_BYTES"]

FLIT_BYTES = 16.0  # payload bytes per flit (Aries-class granularity)


@dataclass(frozen=True, slots=True)
class Flow:
    """One point-to-point traffic demand over a step interval."""

    src: str     # node cname
    dst: str     # node cname
    bytes: float


class NetworkState:
    """Per-link and per-node network counters plus the traffic step.

    The step routine is the hot path of the whole simulator; per-flow
    work is one cached route lookup plus ``np.add.at`` scatter-adds into
    link arrays.
    """

    def __init__(
        self,
        topo: Topology,
        seed: int = 0,
        adaptive: bool = False,
        adaptive_threshold: float = 0.7,
    ) -> None:
        self.topo = topo
        # adaptive (Valiant-style) routing: when last sweep saw a flow's
        # minimal path congested beyond the threshold, detour the flow
        # via a random intermediate router — Aries' congestion response,
        # which spreads hotspots at the cost of extra hops
        self.adaptive = adaptive
        self.adaptive_threshold = float(adaptive_threshold)
        self.detours = 0
        n_links = len(topo.links)
        n_nodes = len(topo.nodes)
        rng = np.random.default_rng(seed)
        self._rng = rng

        self.cum_traffic_flits = np.zeros(n_links)
        self.cum_stall_flits = np.zeros(n_links)
        # healthy SerDes BER around 1e-15 with lognormal part spread
        self.ber = 10 ** rng.normal(-15.0, 0.3, n_links)
        # per-link BER growth rate per second (0 = stable; faults raise it)
        self.ber_growth = np.zeros(n_links)
        self.link_failed = np.zeros(n_links, dtype=bool)

        self.node_index = {n: i for i, n in enumerate(topo.nodes)}
        self.inject_offered_Bps = np.zeros(n_nodes)
        self.inject_achieved_Bps = np.zeros(n_nodes)

        # last-step per-link instantaneous quantities (for collectors)
        self.link_util = np.zeros(n_links)
        self.link_stall_ratio = np.zeros(n_links)

        self._bw = np.array([l.bandwidth_Bps for l in topo.links])

    # -- faults ----------------------------------------------------------------

    def fail_link(self, idx: int) -> None:
        if not self.link_failed[idx]:
            self.link_failed[idx] = True
            self.topo.remove_link(idx)

    def restore_link(self, idx: int) -> None:
        if self.link_failed[idx]:
            self.link_failed[idx] = False
            self.topo.restore_link(idx)

    def start_ber_degradation(self, idx: int, decades_per_day: float) -> None:
        """Begin exponential BER growth on a link (marginal cable model)."""
        self.ber_growth[idx] = decades_per_day / 86400.0

    # -- the traffic step ----------------------------------------------------------

    def step(self, dt: float, flows: Sequence[Flow]) -> None:
        """Route ``flows`` over ``dt`` seconds and update all counters."""
        topo = self.topo
        n_links = len(topo.links)
        offered = np.zeros(n_links)

        routed: list[tuple[Flow, tuple[int, ...]]] = []
        self.inject_offered_Bps[:] = 0.0
        self.inject_achieved_Bps[:] = 0.0

        prev_util = self.link_util
        # batch the per-link scatter-adds: one np.add.at over the
        # concatenated routes instead of one call per flow (the hot
        # path; profiling showed per-flow ufunc.at dominating)
        flat_links: list[int] = []
        route_lens: list[int] = []
        route_bytes: list[float] = []
        for f in flows:
            if f.bytes <= 0:
                continue
            try:
                route = topo.route(f.src, f.dst)
            except NoRouteError:
                continue  # partitioned after link failures: flow drops
            if (
                self.adaptive
                and route
                and max(prev_util[i] for i in route)
                >= self.adaptive_threshold
            ):
                detour = self._valiant_route(f.src, f.dst, prev_util)
                if detour is not None:
                    route = detour
                    self.detours += 1
            routed.append((f, route))
            si = self.node_index[f.src]
            self.inject_offered_Bps[si] += f.bytes / dt
            if route:
                flat_links.extend(route)
                route_lens.append(len(route))
                route_bytes.append(f.bytes)
        if flat_links:
            np.add.at(
                offered,
                np.asarray(flat_links, dtype=np.int64),
                np.repeat(np.asarray(route_bytes),
                          np.asarray(route_lens)),
            )

        cap = self._bw * dt
        with np.errstate(divide="ignore", invalid="ignore"):
            util = np.where(cap > 0, offered / cap, 0.0)
        self.link_util = np.minimum(util, 1.0)

        # stalls: M/M/1-ish waiting growth, clipped before the pole
        rho = np.minimum(util, 0.97)
        stall_per_flit = np.where(
            util > 0.05, 0.15 * rho / (1.0 - rho), 0.0
        )
        moved_bytes = np.minimum(offered, cap)
        moved_flits = moved_bytes / FLIT_BYTES
        self.cum_traffic_flits += moved_flits
        stall_flits = moved_flits * stall_per_flit
        self.cum_stall_flits += stall_flits
        denom = moved_flits + stall_flits
        self.link_stall_ratio = np.divide(
            stall_flits,
            denom,
            out=np.zeros_like(denom),
            where=denom > 0,
        )

        # per-flow achieved throughput: limited by the most oversubscribed
        # link on its path (max util), then by the NIC line rate
        for f, route in routed:
            si = self.node_index[f.src]
            slowdown = 1.0
            if route:
                worst = max(util[i] for i in route)
                if worst > 1.0:
                    slowdown = 1.0 / worst
            self.inject_achieved_Bps[si] += (f.bytes / dt) * slowdown
        np.minimum(
            self.inject_achieved_Bps,
            getattr(topo, "nic_bw_Bps", np.inf),
            out=self.inject_achieved_Bps,
        )

        # BER evolution for degrading links
        growing = self.ber_growth > 0
        if growing.any():
            self.ber[growing] *= 10 ** (self.ber_growth[growing] * dt)

    def _valiant_route(
        self, src: str, dst: str, prev_util: np.ndarray
    ) -> tuple[int, ...] | None:
        """UGAL-style detour: a Valiant route via a random intermediate,
        taken only when it is *measurably cooler* than the minimal path.

        Always-detour Valiant famously hurts uniform traffic (every
        detour doubles global-link crossings); Aries' UGAL compares the
        congestion of the minimal and non-minimal candidates and takes
        the detour only when it wins.  We approximate queue depth with
        last-sweep link utilization.
        """
        minimal = self.topo.route(src, dst)
        min_cost = max((prev_util[i] for i in minimal), default=0.0)
        nodes = self.topo.nodes
        ra = self.topo.node_router[src]
        rb = self.topo.node_router[dst]
        best: tuple[int, ...] | None = None
        best_cost = min_cost - 0.1   # detour must clearly win
        for _ in range(4):   # a few candidate intermediates
            mid = nodes[int(self._rng.integers(0, len(nodes)))]
            rm = self.topo.node_router[mid]
            if rm == ra or rm == rb:
                continue
            try:
                candidate = self.topo.route(src, mid) + self.topo.route(
                    mid, dst
                )
            except NoRouteError:
                continue
            cost = max((prev_util[i] for i in candidate), default=0.0)
            if cost < best_cost:
                best = candidate
                best_cost = cost
        return best

    # -- derived views for collectors ------------------------------------------------

    def inject_bw_frac(self) -> np.ndarray:
        """Achieved injection bandwidth fraction per node (Figure 1)."""
        nic = getattr(self.topo, "nic_bw_Bps", None)
        if not nic:
            return np.zeros_like(self.inject_achieved_Bps)
        return self.inject_achieved_Bps / nic

    def link_names(self) -> list[str]:
        return [l.name for l in self.topo.links]
