"""The simulated platform: composition root and time-stepping loop.

A :class:`Machine` owns the topology, node/GPU state, network, shared
filesystem, batch scheduler, workload generator, machine-room
environment, and fault injector, and advances them together.  It is the
"system" of the paper; everything in :mod:`repro.sources` observes it
and nothing else mutates it.

The step order matters and mirrors how the real thing behaves:

1. faults fire/expire (conditions exist before anyone measures them),
2. new jobs arrive and the scheduler launches what fits,
3. running jobs express demands (CPU, traffic, I/O),
4. shared resources serve those demands under contention,
5. jobs progress at the rate contention allowed (victims slow down),
6. node/GPU/room physics advance,
7. discrete events emitted along the way land in the event buffer for
   the event-router source to drain.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..core.clock import DriftingClock, DriftModel, SimClock
from ..core.events import Event, EventKind, Severity
from .components import GpuStore
from .faults import FaultInjector
from .filesystem import IODemand, LustreFS
from .network import Flow, NetworkState
from .node import NodeStore
from .scheduler import BatchScheduler, PlacementPolicy
from .topology import Topology, build_dragonfly
from .workload import Job, JobGenerator, JobState

__all__ = ["RoomEnv", "Machine"]


class RoomEnv:
    """Machine-room environment (ORNL/NERSC facility monitoring target)."""

    def __init__(self, seed: int = 0) -> None:
        self.setpoint_c = 22.0
        self.ambient_c = 22.0
        self.humidity = 0.45
        self.baseline_corrosion = 150.0   # A/month coupon rate (benign)
        self.corrosion_rate = self.baseline_corrosion
        self.particulate = 12.0           # ug/m3
        self._rng = np.random.default_rng(seed)

    def step(self, dt: float) -> None:
        """Small mean-reverting walk around setpoints."""
        r = self._rng
        pull = min(1.0, dt / 600.0)
        self.ambient_c += (
            (self.setpoint_c - self.ambient_c) * pull * 0.2
            + r.normal(0, 0.02) * np.sqrt(dt)
        )
        self.humidity = float(
            np.clip(self.humidity + r.normal(0, 2e-4) * np.sqrt(dt), 0.2, 0.8)
        )
        self.particulate = float(
            max(1.0, self.particulate + r.normal(0, 0.02) * np.sqrt(dt))
        )


class Machine:
    """A complete simulated HPC platform."""

    def __init__(
        self,
        topo: Topology | None = None,
        *,
        placement: PlacementPolicy | None = None,
        job_generator: JobGenerator | None = None,
        gpu_nodes: Sequence[str] | str | None = None,
        health_gate: Callable[[str], bool] | None = None,
        gpu_failure_kills_job: bool = True,
        clock_drift: DriftModel | None = None,
        fs: LustreFS | None = None,
        seed: int = 0,
    ) -> None:
        self.topo = topo or build_dragonfly(groups=2, chassis_per_group=3,
                                            blades_per_chassis=4)
        self.clock = SimClock()
        self.seed = seed
        self.nodes = NodeStore(self.topo.nodes, seed=seed)
        self.network = NetworkState(self.topo, seed=seed + 1)
        self.fs = fs or LustreFS(seed=seed + 2)
        self.scheduler = BatchScheduler(
            self.topo,
            placement=placement,
            health_gate=health_gate,
            seed=seed + 3,
        )
        self.job_generator = job_generator
        self.room = RoomEnv(seed=seed + 4)
        self.faults = FaultInjector()
        self.gpu_failure_kills_job = gpu_failure_kills_job

        if gpu_nodes == "all":
            gpu_hosts = list(self.topo.nodes)
        elif gpu_nodes is None:
            gpu_hosts = []
        else:
            gpu_hosts = list(gpu_nodes)
        self.gpus = GpuStore(gpu_hosts, seed=seed + 5) if gpu_hosts else None

        drift = clock_drift or DriftModel(seed=seed + 6)
        self.node_clocks: dict[str, DriftingClock] = {
            n: drift.make_clock() for n in self.topo.nodes
        }

        self._event_buffer: list[Event] = []
        self.steps_taken = 0

    # -- events ---------------------------------------------------------------

    def emit_event(
        self,
        kind: EventKind,
        severity: Severity,
        component: str,
        message: str,
        fields: dict | None = None,
        local_clock: bool = False,
    ) -> Event:
        """Emit a discrete event stamped at the current (true) time.

        With ``local_clock=True`` the timestamp instead comes from the
        producing node's drifting clock — the realistic, messy case the
        correlation ablation studies.
        """
        t = self.clock.now
        if local_clock and component in self.node_clocks:
            t = self.node_clocks[component].local_time(t)
        ev = Event(
            time=t,
            component=component,
            kind=kind,
            severity=severity,
            message=message,
            fields=fields or {},
        )
        self._event_buffer.append(ev)
        return ev

    def drain_events(self) -> list[Event]:
        """Hand pending events to the event router (destructive read)."""
        out = self._event_buffer
        self._event_buffer = []
        return out

    # -- main loop ----------------------------------------------------------------

    def step(self, dt: float = 1.0) -> None:
        """Advance the whole machine by ``dt`` seconds."""
        now = self.clock.now

        # 1. faults
        self.faults.step(self, now)

        # 2. arrivals + scheduling
        if self.job_generator is not None:
            for job in self.job_generator.poll(now):
                self.scheduler.submit(job, now)
        started = self.scheduler.tick(now)
        for job in started:
            self.emit_event(
                EventKind.SCHEDULER, Severity.INFO, "scheduler",
                f"job {job.id} ({job.app.name}) started on "
                f"{len(job.nodes)} nodes",
                fields={"job_id": job.id, "nodes": list(job.nodes)},
            )

        # 3. demands
        util = np.zeros(self.nodes.n)
        flows: list[Flow] = []
        demands: list[IODemand] = []
        running = list(self.scheduler.running)
        for job in running:
            idxs = self.nodes.idxs(job.nodes)
            util[idxs] = np.maximum(util[idxs], job.demanded_util())
            flows.extend(job.flows(dt))
            d = job.io_demand(dt, self.fs.n_ost)
            if d is not None:
                demands.append(d)

        # 4. shared-resource service
        self.fs.step(dt, demands)
        self.network.step(dt, flows)

        # 5. job progress under contention
        offered = self.network.inject_offered_Bps
        achieved = self.network.inject_achieved_Bps
        for job in running:
            idxs = self.nodes.idxs(job.nodes)
            if self.nodes.hung[idxs].any():
                # a hung rank stalls the whole job at its next barrier;
                # power stays up (nodes still spin) but progress stops —
                # the KAUST power-signature scenario
                pass
            else:
                off = float(offered[idxs].sum())
                ach = float(achieved[idxs].sum())
                comm_eff = ach / off if off > 0 else 1.0
                io_eff = self.fs.job_io_fraction.get(job.id, 1.0)
                cpu_speed = float(self.nodes.pstate_frac[idxs].mean())
                job.advance(dt, comm_eff=comm_eff, io_eff=io_eff,
                            cpu_speed=cpu_speed)

            if job.done:
                self.scheduler.complete(job, now + dt)
                self.emit_event(
                    EventKind.SCHEDULER, Severity.INFO, "scheduler",
                    f"job {job.id} ({job.app.name}) completed, "
                    f"runtime {job.runtime:.0f}s",
                    fields={"job_id": job.id, "runtime": job.runtime},
                )
            elif (
                job.start_time is not None
                and (now + dt) - job.start_time > job.walltime_req
            ):
                self.scheduler.complete(job, now + dt, JobState.FAILED)
                self.emit_event(
                    EventKind.SCHEDULER, Severity.WARNING, "scheduler",
                    f"job {job.id} ({job.app.name}) hit walltime limit",
                    fields={"job_id": job.id},
                )

        # 6. physics
        self.nodes.step(dt, util, self.room.ambient_c)
        self.room.step(dt)
        if self.gpus is not None:
            gpu_util = util[self.nodes.idxs(self.gpus.host_nodes)]
            failed_now = self.gpus.step(
                dt, self.room.corrosion_rate, gpu_util
            )
            for gi in failed_now:
                host = self.gpus.host_nodes[gi]
                self.emit_event(
                    EventKind.HWERR, Severity.CRITICAL, host,
                    "GPU fell off the bus: Xid 79 (GPU has fallen off "
                    "the bus)",
                    fields={"gpu": f"{host}g0"},
                )
                if self.gpu_failure_kills_job:
                    for victim in self.scheduler.kill_jobs_on_node(
                        host, now + dt
                    ):
                        self.emit_event(
                            EventKind.SCHEDULER, Severity.ERROR,
                            "scheduler",
                            f"job {victim.id} failed: GPU fault on {host}",
                            fields={"job_id": victim.id, "node": host},
                        )

        self.clock.advance(dt)
        self.steps_taken += 1

    def run(
        self,
        duration: float,
        dt: float = 1.0,
        on_step: Callable[["Machine"], None] | None = None,
    ) -> None:
        """Step the machine for ``duration`` seconds of simulated time."""
        end = self.clock.now + duration
        while self.clock.now < end - 1e-9:
            self.step(dt)
            if on_step is not None:
                on_step(self)

    # -- convenience surfaces used by collectors ------------------------------------

    @property
    def now(self) -> float:
        return self.clock.now

    def running_job_on(self, node: str) -> Job | None:
        jid = self.scheduler.allocated.get(node)
        if jid is None:
            return None
        for j in self.scheduler.running:
            if j.id == jid:
                return j
        return None
