"""HSN topologies: Aries-style dragonfly and Gemini-style 3D torus.

The participating sites run Cray XC (Aries dragonfly — Theta, Cori,
Edison, Piz Daint, Shaheen2, Hazel Hen, Trinity, Sisu) and Cray XE/XK
(Gemini 3D torus — Blue Waters, Titan) machines.  SNL's congestion work
(Section II-9) explicitly targets both interconnects, so we build both.

Component naming follows the Cray *cname* convention so that telemetry
looks like real site telemetry:

    c{col}-{row}            cabinet
    c{col}-{row}c{k}        chassis ``k`` within cabinet
    c{col}-{row}c{k}s{s}    blade (slot) ``s`` within chassis
    c{col}-{row}c{k}s{s}n{i} node ``i`` on blade

Routers carry the blade cname with an ``a0`` (Aries) or ``g0`` (Gemini)
suffix.  Links are identified by ``(router_a, router_b)`` name pairs plus
a class: ``green`` (intra-chassis backplane), ``black`` (intra-group
cables), ``blue`` (global optical) for dragonfly; ``x+``/``x-``/... for
torus dimensions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import networkx as nx

__all__ = [
    "Link",
    "NoRouteError",
    "Topology",
    "DragonflyTopology",
    "TorusTopology",
    "build_dragonfly",
    "build_torus",
]


class NoRouteError(Exception):
    """No path exists between two nodes (network partitioned by faults).

    The specific, expected condition callers handle when routing across
    a degraded fabric — distinct from programming errors, which must
    propagate.
    """


@dataclass(frozen=True, slots=True)
class Link:
    """One physical HSN link (modeled as bidirectional with shared counters)."""

    index: int
    a: str                  # router cname
    b: str                  # router cname
    klass: str              # green | black | blue | x | y | z
    bandwidth_Bps: float    # usable payload bandwidth, bytes/second

    @property
    def name(self) -> str:
        return f"{self.a}<->{self.b}"


class Topology:
    """Base class: routers, links, node attachment, and shortest routing.

    Subclasses fill ``graph`` (networkx, routers as vertices, edge attr
    ``link`` -> :class:`Link`), ``node_router`` (node cname -> router
    cname), and the structural maps used for aggregation (node -> cabinet,
    node -> group).  Route computation is cached per router pair.
    """

    def __init__(self) -> None:
        self.graph = nx.Graph()
        self.links: list[Link] = []
        self.node_router: dict[str, str] = {}
        self.node_cabinet: dict[str, str] = {}
        self.node_group: dict[str, int] = {}
        self._route_cache: dict[tuple[str, str], tuple[int, ...]] = {}

    # -- construction helpers ---------------------------------------------

    def _add_link(
        self, a: str, b: str, klass: str, bandwidth_Bps: float
    ) -> Link:
        link = Link(len(self.links), a, b, klass, bandwidth_Bps)
        self.links.append(link)
        self.graph.add_edge(a, b, link=link)
        return link

    # -- inventory ----------------------------------------------------------

    @property
    def nodes(self) -> list[str]:
        """All compute-node cnames, in deterministic order."""
        return self._nodes

    @property
    def routers(self) -> list[str]:
        return sorted(self.graph.nodes)

    @property
    def cabinets(self) -> list[str]:
        return sorted(set(self.node_cabinet.values()))

    def nodes_in_cabinet(self, cabinet: str) -> list[str]:
        return [n for n in self._nodes if self.node_cabinet[n] == cabinet]

    def link_by_index(self, idx: int) -> Link:
        return self.links[idx]

    # -- routing -------------------------------------------------------------

    def route(self, src_node: str, dst_node: str) -> tuple[int, ...]:
        """Link indices on the path between two compute nodes.

        Uses the topology's deterministic minimal path (subclasses
        override ``_router_path`` for topology-specific routing).  Cached
        per router pair — route tables on the real hardware are similarly
        static between failures.
        """
        ra = self.node_router[src_node]
        rb = self.node_router[dst_node]
        if ra == rb:
            return ()
        key = (ra, rb)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        try:
            path = self._router_path(ra, rb)
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise NoRouteError(
                f"no route {src_node} -> {dst_node} "
                f"(routers {ra} -> {rb})"
            ) from exc
        idxs = tuple(
            self.graph.edges[u, v]["link"].index
            for u, v in zip(path, path[1:])
        )
        self._route_cache[key] = idxs
        return idxs

    def _router_path(self, ra: str, rb: str) -> list[str]:
        return nx.shortest_path(self.graph, ra, rb)

    def invalidate_routes(self) -> None:
        """Flush the route cache (after a link failure / recovery)."""
        self._route_cache.clear()

    def remove_link(self, idx: int) -> None:
        """Take a link out of service (fault injection)."""
        link = self.links[idx]
        if self.graph.has_edge(link.a, link.b):
            self.graph.remove_edge(link.a, link.b)
            self.invalidate_routes()

    def restore_link(self, idx: int) -> None:
        """Return a failed link to service."""
        link = self.links[idx]
        if not self.graph.has_edge(link.a, link.b):
            self.graph.add_edge(link.a, link.b, link=link)
            self.invalidate_routes()


class DragonflyTopology(Topology):
    """Aries-style dragonfly.

    ``groups`` electrical groups, each of ``chassis_per_group`` chassis of
    ``blades_per_chassis`` blades; one router and ``nodes_per_router``
    nodes per blade.  Intra-chassis routers are all-to-all over the
    backplane (green); same-slot routers across chassis of a group are
    connected (black); groups are connected all-to-all by global optical
    links (blue), each group contributing evenly spread endpoints.

    On the real XC a group is two cabinets of three chassis each; we keep
    that mapping (cabinet = 3 chassis) so cabinet-level power aggregation
    (Figure 3) has honest physical structure.
    """

    CHASSIS_PER_CABINET = 3

    def __init__(
        self,
        groups: int = 4,
        chassis_per_group: int = 6,
        blades_per_chassis: int = 16,
        nodes_per_router: int = 4,
        link_bw_Bps: float = 14e9,      # Aries-class per-link payload bw
        global_bw_Bps: float = 4.7e9,   # optical per-link
        nic_bw_Bps: float = 10e9,       # node injection bandwidth
    ) -> None:
        super().__init__()
        if chassis_per_group % self.CHASSIS_PER_CABINET:
            raise ValueError("chassis_per_group must be a multiple of 3")
        self.groups = groups
        self.chassis_per_group = chassis_per_group
        self.blades_per_chassis = blades_per_chassis
        self.nodes_per_router = nodes_per_router
        self.nic_bw_Bps = float(nic_bw_Bps)
        self._nodes: list[str] = []
        self._build(link_bw_Bps, global_bw_Bps)

    # router cname helpers
    def _chassis_cname(self, group: int, chassis: int) -> str:
        cab_in_group, chassis_in_cab = divmod(
            chassis, self.CHASSIS_PER_CABINET
        )
        cab_index = group * (
            self.chassis_per_group // self.CHASSIS_PER_CABINET
        ) + cab_in_group
        return f"c{cab_index}-0c{chassis_in_cab}"

    def _router_cname(self, group: int, chassis: int, blade: int) -> str:
        return f"{self._chassis_cname(group, chassis)}s{blade}a0"

    def _build(self, link_bw: float, global_bw: float) -> None:
        # routers + nodes
        for g in range(self.groups):
            for c in range(self.chassis_per_group):
                chassis_cname = self._chassis_cname(g, c)
                cabinet_cname = chassis_cname[: chassis_cname.rindex("c")]
                for s in range(self.blades_per_chassis):
                    router = self._router_cname(g, c, s)
                    self.graph.add_node(router)
                    for i in range(self.nodes_per_router):
                        node = f"{chassis_cname}s{s}n{i}"
                        self._nodes.append(node)
                        self.node_router[node] = router
                        self.node_cabinet[node] = cabinet_cname
                        self.node_group[node] = g
        # green: all-to-all within chassis
        for g in range(self.groups):
            for c in range(self.chassis_per_group):
                routers = [
                    self._router_cname(g, c, s)
                    for s in range(self.blades_per_chassis)
                ]
                for a, b in itertools.combinations(routers, 2):
                    self._add_link(a, b, "green", link_bw)
        # black: same slot across chassis within a group
        for g in range(self.groups):
            for s in range(self.blades_per_chassis):
                routers = [
                    self._router_cname(g, c, s)
                    for c in range(self.chassis_per_group)
                ]
                for a, b in itertools.combinations(routers, 2):
                    self._add_link(a, b, "black", link_bw)
        # blue: groups all-to-all with >=2 parallel global links per pair
        # (real XC systems have many; two guarantees single-link failures
        # never partition groups), endpoints spread round-robin so global
        # traffic does not funnel through one gateway router
        routers_per_group = self.chassis_per_group * self.blades_per_chassis
        n_parallel = max(2, self.blades_per_chassis // 4)
        pair_counter = 0
        for ga, gb in itertools.combinations(range(self.groups), 2):
            made = 0
            offset = 0
            while made < n_parallel and offset < routers_per_group * 2:
                idx_a = (pair_counter * n_parallel + made + offset) % (
                    routers_per_group
                )
                idx_b = (idx_a * 7 + 3 + made) % routers_per_group
                ca, sa = divmod(idx_a, self.blades_per_chassis)
                cb, sb = divmod(idx_b, self.blades_per_chassis)
                a = self._router_cname(ga, ca, sa)
                b = self._router_cname(gb, cb, sb)
                if not self.graph.has_edge(a, b):
                    self._add_link(a, b, "blue", global_bw)
                    made += 1
                else:
                    offset += 1
            pair_counter += 1

    def _router_path(self, ra: str, rb: str) -> list[str]:
        # Minimal dragonfly routing favors: local hop -> global link ->
        # local hop.  networkx shortest path on the built graph realizes
        # exactly that because green/black links make groups near-cliques.
        return nx.shortest_path(self.graph, ra, rb)


class TorusTopology(Topology):
    """Gemini-style 3D torus (Blue Waters / Titan class).

    Routers form an ``nx * ny * nz`` torus; each router (Gemini ASIC)
    serves ``nodes_per_router`` nodes (2 on real Gemini blades).  Routing
    is dimension-ordered (x then y then z, each dimension taking the
    shorter wrap direction), matching the largely-static routing the
    paper's TAS discussion assumes.
    """

    def __init__(
        self,
        nx_dim: int = 4,
        ny_dim: int = 4,
        nz_dim: int = 4,
        nodes_per_router: int = 2,
        link_bw_Bps: float = 9.4e9,
        nic_bw_Bps: float = 6e9,
    ) -> None:
        super().__init__()
        self.dims = (nx_dim, ny_dim, nz_dim)
        self.nodes_per_router = nodes_per_router
        self.nic_bw_Bps = float(nic_bw_Bps)
        self._nodes: list[str] = []
        self._link_lookup: dict[tuple[str, str], int] = {}
        self._build(link_bw_Bps)

    def _router_cname(self, x: int, y: int, z: int) -> str:
        return f"c{x}-{y}c0s{z}g0"

    def _coords(self, router: str) -> tuple[int, int, int]:
        return self._router_coords[router]

    def _build(self, link_bw: float) -> None:
        nx_d, ny_d, nz_d = self.dims
        self._router_coords: dict[str, tuple[int, int, int]] = {}
        for x in range(nx_d):
            for y in range(ny_d):
                for z in range(nz_d):
                    r = self._router_cname(x, y, z)
                    self.graph.add_node(r)
                    self._router_coords[r] = (x, y, z)
                    cabinet = f"c{x}-{y}"
                    for i in range(self.nodes_per_router):
                        node = f"c{x}-{y}c0s{z}n{i}"
                        self._nodes.append(node)
                        self.node_router[node] = r
                        self.node_cabinet[node] = cabinet
                        self.node_group[node] = x  # x-slab as "group"
        axes = ("x", "y", "z")
        for x in range(nx_d):
            for y in range(ny_d):
                for z in range(nz_d):
                    here = self._router_cname(x, y, z)
                    neighbors = (
                        self._router_cname((x + 1) % nx_d, y, z),
                        self._router_cname(x, (y + 1) % ny_d, z),
                        self._router_cname(x, y, (z + 1) % nz_d),
                    )
                    for axis, other in zip(axes, neighbors):
                        if other == here:
                            continue  # dimension of size 1: no link
                        if not self.graph.has_edge(here, other):
                            link = self._add_link(here, other, axis, link_bw)
                            self._link_lookup[(here, other)] = link.index
                            self._link_lookup[(other, here)] = link.index

    def _router_path(self, ra: str, rb: str) -> list[str]:
        # dimension-order routing with shortest wrap per dimension
        path = [ra]
        x, y, z = self._coords(ra)
        tx, ty, tz = self._coords(rb)
        cur = [x, y, z]
        target = [tx, ty, tz]
        for dim in range(3):
            size = self.dims[dim]
            while cur[dim] != target[dim]:
                fwd = (target[dim] - cur[dim]) % size
                back = (cur[dim] - target[dim]) % size
                step = 1 if fwd <= back else -1
                cur[dim] = (cur[dim] + step) % size
                nxt = self._router_cname(*cur)
                prev = path[-1]
                if not self.graph.has_edge(prev, nxt):
                    # failed link on the dimension-order path: fall back to
                    # adaptive (shortest available) routing for the rest
                    rest = nx.shortest_path(self.graph, prev, rb)
                    return path[:-1] + rest
                path.append(nxt)
        return path


def build_dragonfly(
    groups: int = 4,
    chassis_per_group: int = 6,
    blades_per_chassis: int = 16,
    nodes_per_router: int = 4,
    **kw,
) -> DragonflyTopology:
    """Convenience constructor used by examples and benches."""
    return DragonflyTopology(
        groups, chassis_per_group, blades_per_chassis, nodes_per_router, **kw
    )


def build_torus(
    nx_dim: int = 4, ny_dim: int = 4, nz_dim: int = 4, **kw
) -> TorusTopology:
    return TorusTopology(nx_dim, ny_dim, nz_dim, **kw)
