"""Compute-node state, stored as structure-of-arrays for whole-machine updates.

A 20k-node machine stepped at 1 Hz for hours of simulated time cannot
afford per-node Python objects in the hot loop; following the
vectorization guidance of the hpc-parallel guides, all per-node state
lives in parallel numpy arrays inside :class:`NodeStore`, and
:class:`Node` is a lightweight proxy view used by code that wants
object-style access (health checks, fault handlers, tests).

State covered here is what the sites' collectors read: CPU utilization,
free memory (LANL checks "an appropriate amount of free memory on compute
nodes"), load, temperature, power, cumulative energy, up/hung flags, and
the state of essential services and filesystem mounts (LANL verifies
"essential services and daemons are functional, including filesystem
mounts").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["ESSENTIAL_SERVICES", "NodeStore", "Node"]

# Services every compute node must run; LANL-style checks verify each.
ESSENTIAL_SERVICES: tuple[str, ...] = (
    "munge",           # auth for the workload manager
    "slurmd",          # workload-manager node daemon
    "ntpd",            # time sync (clock-drift discipline)
    "lnet",            # Lustre networking
)

# Filesystem mounts every node must hold.
ESSENTIAL_MOUNTS: tuple[str, ...] = ("/scratch", "/home")


class NodeStore:
    """Structure-of-arrays state for all compute nodes of a machine."""

    def __init__(
        self,
        names: Sequence[str],
        mem_total_gb: float = 128.0,
        idle_power_w: float = 90.0,
        max_power_w: float = 350.0,
        seed: int = 0,
    ) -> None:
        self.names: list[str] = list(names)
        self.index: dict[str, int] = {n: i for i, n in enumerate(self.names)}
        n = len(self.names)
        self.n = n
        self.mem_total_gb = float(mem_total_gb)
        self.idle_power_w = float(idle_power_w)
        self.max_power_w = float(max_power_w)

        rng = np.random.default_rng(seed)
        self.cpu_util = np.zeros(n)
        self.mem_free_gb = np.full(n, mem_total_gb * 0.95)
        self.load1 = np.zeros(n)
        self.temp_c = np.full(n, 35.0) + rng.normal(0, 0.5, n)
        self.power_w = np.full(n, idle_power_w)
        self.energy_j = np.zeros(n)
        self.up = np.ones(n, dtype=bool)
        self.hung = np.zeros(n, dtype=bool)
        # service/mount health: rows = nodes, columns = services/mounts
        self.services = np.ones((n, len(ESSENTIAL_SERVICES)), dtype=bool)
        self.mounts = np.ones((n, len(ESSENTIAL_MOUNTS)), dtype=bool)
        # memory-leak fault state: GB/s leak rate per node (0 = no leak)
        self.leak_rate = np.zeros(n)
        # p-state cap as a fraction of nominal frequency (SNL power sweeps)
        self.pstate_frac = np.ones(n)
        # configuration fingerprint (kernel params, image version, BB
        # setup); LANL's suite verifies these match the golden config
        self.config_hash = np.zeros(n, dtype=np.int64)

    # -- indexing -----------------------------------------------------------

    def idx(self, name: str) -> int:
        return self.index[name]

    def idxs(self, names: Iterable[str]) -> np.ndarray:
        return np.fromiter(
            (self.index[n] for n in names), dtype=np.int64
        )

    def node(self, name: str) -> "Node":
        return Node(self, self.index[name])

    def __len__(self) -> int:
        return self.n

    # -- bulk update (called once per machine step) ---------------------------

    def step(self, dt: float, util: np.ndarray, ambient_c: float) -> None:
        """Advance node physics by ``dt`` given target utilization per node.

        ``util`` is the application-demanded CPU utilization in [0, 1]
        for every node this step (0 for idle nodes).  Hung nodes pin
        utilization (a hung node burns power without progress — the KAUST
        power-signature detector keys on exactly this); down nodes draw
        nothing.
        """
        if util.shape != (self.n,):
            raise ValueError("util must have one entry per node")
        effective = np.where(self.hung, self.cpu_util, util)
        effective = np.where(self.up, effective, 0.0)
        # frequency capping scales achievable utilization's power cost
        self.cpu_util = effective
        self.load1 += (effective * 32.0 - self.load1) * min(1.0, dt / 60.0)

        # power: idle + dynamic * util * f^2 (classic CMOS scaling)
        dyn = (self.max_power_w - self.idle_power_w)
        target_power = np.where(
            self.up,
            self.idle_power_w
            + dyn * self.cpu_util * self.pstate_frac**2,
            0.0,
        )
        # first-order thermal/power lag so profiles look like real traces
        alpha = min(1.0, dt / 5.0)
        self.power_w += (target_power - self.power_w) * alpha
        self.energy_j += self.power_w * dt

        # temperature follows power above ambient
        target_temp = ambient_c + 8.0 + 0.12 * (self.power_w - self.idle_power_w).clip(0)
        self.temp_c += (target_temp - self.temp_c) * min(1.0, dt / 30.0)

        # memory leaks eat free memory until the node runs dry
        leaking = self.leak_rate > 0
        if leaking.any():
            self.mem_free_gb[leaking] = np.maximum(
                0.0, self.mem_free_gb[leaking] - self.leak_rate[leaking] * dt
            )

    # -- fault hooks -----------------------------------------------------------

    def set_hung(self, name: str, hung: bool = True) -> None:
        i = self.index[name]
        self.hung[i] = hung

    def set_down(self, name: str, down: bool = True) -> None:
        i = self.index[name]
        self.up[i] = not down

    def kill_service(self, name: str, service: str) -> None:
        i = self.index[name]
        j = ESSENTIAL_SERVICES.index(service)
        self.services[i, j] = False

    def restore_service(self, name: str, service: str) -> None:
        i = self.index[name]
        j = ESSENTIAL_SERVICES.index(service)
        self.services[i, j] = True

    def drop_mount(self, name: str, mount: str) -> None:
        i = self.index[name]
        j = ESSENTIAL_MOUNTS.index(mount)
        self.mounts[i, j] = False

    def restore_mount(self, name: str, mount: str) -> None:
        i = self.index[name]
        j = ESSENTIAL_MOUNTS.index(mount)
        self.mounts[i, j] = True

    def drift_config(self, name: str, new_hash: int = 1) -> None:
        """A node's configuration diverges from the golden image."""
        self.config_hash[self.index[name]] = new_hash

    def restore_config(self, name: str) -> None:
        self.config_hash[self.index[name]] = 0

    def start_leak(self, name: str, gb_per_s: float) -> None:
        self.leak_rate[self.index[name]] = gb_per_s

    def stop_leak(self, name: str) -> None:
        i = self.index[name]
        self.leak_rate[i] = 0.0
        self.mem_free_gb[i] = self.mem_total_gb * 0.95

    # -- derived views -----------------------------------------------------------

    def healthy_mask(self, min_free_gb: float = 4.0) -> np.ndarray:
        """Nodes passing the LANL-style basic health predicate."""
        return (
            self.up
            & ~self.hung
            & self.services.all(axis=1)
            & self.mounts.all(axis=1)
            & (self.mem_free_gb >= min_free_gb)
        )


@dataclass(frozen=True, slots=True)
class Node:
    """Lightweight object view over one row of a :class:`NodeStore`."""

    store: NodeStore
    i: int

    @property
    def name(self) -> str:
        return self.store.names[self.i]

    @property
    def up(self) -> bool:
        return bool(self.store.up[self.i])

    @property
    def hung(self) -> bool:
        return bool(self.store.hung[self.i])

    @property
    def cpu_util(self) -> float:
        return float(self.store.cpu_util[self.i])

    @property
    def mem_free_gb(self) -> float:
        return float(self.store.mem_free_gb[self.i])

    @property
    def power_w(self) -> float:
        return float(self.store.power_w[self.i])

    @property
    def temp_c(self) -> float:
        return float(self.store.temp_c[self.i])

    def service_ok(self, service: str) -> bool:
        j = ESSENTIAL_SERVICES.index(service)
        return bool(self.store.services[self.i, j])

    def mount_ok(self, mount: str) -> bool:
        j = ESSENTIAL_MOUNTS.index(mount)
        return bool(self.store.mounts[self.i, j])
