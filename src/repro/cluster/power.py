"""Power aggregation: node -> cabinet -> system (the Figure 3 axes).

KAUST's Shaheen2 monitoring (Section II-7) watches total system power
and per-cabinet power; load imbalance shows up as up-to-3x variation
between cabinets and a ~1.9x drop in total draw.  Aggregation here is a
single vectorized ``np.bincount`` over the node->cabinet index map, plus
a per-cabinet blower/overhead term so cabinet totals have the right
shape even when idle.
"""

from __future__ import annotations

import numpy as np

from .node import NodeStore
from .topology import Topology

__all__ = ["PowerModel"]


class PowerModel:
    """Cabinet and system power aggregation over a :class:`NodeStore`.

    Cabinet blowers are variable-speed: a base draw plus a dynamic term
    tracking the cabinet's thermal load (node power as a fraction of the
    cabinet's maximum).  An idle cabinet therefore sits far below a busy
    one — which is what lets KAUST's ~3x cabinet-to-cabinet variation
    show up at the cabinet meter and not just at the node VRMs.
    """

    def __init__(
        self,
        topo: Topology,
        nodes: NodeStore,
        blower_base_w: float = 1500.0,
        blower_dyn_w: float = 3000.0,
    ) -> None:
        self.topo = topo
        self.nodes = nodes
        self.blower_base_w = float(blower_base_w)
        self.blower_dyn_w = float(blower_dyn_w)
        self.cabinets = topo.cabinets
        cab_index = {c: i for i, c in enumerate(self.cabinets)}
        self.node_cab_idx = np.fromiter(
            (cab_index[topo.node_cabinet[n]] for n in nodes.names),
            dtype=np.int64,
            count=len(nodes.names),
        )
        self._cab_nodes = np.bincount(
            self.node_cab_idx, minlength=len(self.cabinets)
        )

    def cabinet_power_w(self) -> np.ndarray:
        """Per-cabinet power: node sum plus variable-speed blowers."""
        sums = np.bincount(
            self.node_cab_idx,
            weights=self.nodes.power_w,
            minlength=len(self.cabinets),
        )
        cab_max = np.maximum(self._cab_nodes, 1) * self.nodes.max_power_w
        load_frac = np.clip(sums / cab_max, 0.0, 1.0)
        return sums + self.blower_base_w + self.blower_dyn_w * load_frac

    def system_power_w(self) -> float:
        return float(self.cabinet_power_w().sum())

    def cabinet_names(self) -> list[str]:
        return list(self.cabinets)
