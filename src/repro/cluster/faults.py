"""Fault injection: the performance-impacting conditions the paper monitors.

Every site story in Section II is a *detection* story; this module
supplies the matching *conditions*, on a schedule, so examples, tests,
and benches can demonstrate detection with known ground truth:

=====================  ==========================================
Fault                  Paper story it exercises
=====================  ==========================================
HungNode               KAUST power-signature hung-node detection
LoadImbalance          KAUST Figure 3 cabinet power variation
CorrosionExcursion     ORNL sulfur-corrosion GPU failure wave
LinkFailure            ALCF/SNL HSN events; recovery-delay cascades
BerDegradation         ALCF link BER trend analysis
SlowOst                NCSA filesystem probe latency detection
MdsDegradation         NCSA metadata probe latency detection
ServiceDeath           LANL essential-service checks
MountLoss              LANL filesystem-mount checks
MemoryLeak             LANL free-memory checks
QueueBlockage          NERSC queue-backlog anomaly
ThermalExcursion       NERSC environmental monitoring
=====================  ==========================================

A :class:`FaultInjector` owns a schedule of faults, applies each at its
start time, reverts it when its window ends, and keeps the ground-truth
record that tests compare detector output against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING
from ..core.events import EventKind, Severity

if TYPE_CHECKING:  # pragma: no cover
    from .machine import Machine

__all__ = [
    "Fault",
    "ConfigDrift",
    "HungNode",
    "LoadImbalance",
    "CorrosionExcursion",
    "LinkFailure",
    "BerDegradation",
    "SlowOst",
    "MdsDegradation",
    "ServiceDeath",
    "MountLoss",
    "MemoryLeak",
    "QueueBlockage",
    "ThermalExcursion",
    "FaultInjector",
]


@dataclass
class Fault:
    """Base fault: active over [start, start + duration)."""

    start: float
    duration: float | None = None   # None = until explicitly cleared
    name: str = "fault"
    target: str = ""

    applied: bool = field(default=False, init=False)
    reverted: bool = field(default=False, init=False)

    def apply(self, m: "Machine") -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def revert(self, m: "Machine") -> None:
        """Default: nothing to undo."""

    def active_at(self, t: float) -> bool:
        if t < self.start:
            return False
        return self.duration is None or t < self.start + self.duration

    def window(self) -> tuple[float, float | None]:
        end = None if self.duration is None else self.start + self.duration
        return (self.start, end)


@dataclass
class HungNode(Fault):
    """A node wedges: keeps drawing busy power but makes no progress."""

    node: str = ""
    name: str = "hung_node"

    def __post_init__(self) -> None:
        self.target = self.node

    def apply(self, m: "Machine") -> None:
        m.nodes.set_hung(self.node, True)
        m.emit_event(
            EventKind.CONSOLE, Severity.ERROR, self.node,
            "kernel: watchdog: BUG: soft lockup - CPU#3 stuck for 23s",
        )

    def revert(self, m: "Machine") -> None:
        m.nodes.set_hung(self.node, False)
        m.emit_event(
            EventKind.CONSOLE, Severity.NOTICE, self.node,
            "node recovered after warm reboot",
        )


@dataclass
class LoadImbalance(Fault):
    """Concentrate a running job's work onto a fraction of its ranks."""

    job_id: int | None = None      # None = largest running job at start
    frac_busy: float = 0.33
    wait_util: float = 0.15
    name: str = "load_imbalance"
    _job_ref: object = field(default=None, init=False, repr=False)

    def apply(self, m: "Machine") -> None:
        jobs = m.scheduler.running
        job = None
        if self.job_id is not None:
            job = next((j for j in jobs if j.id == self.job_id), None)
        elif jobs:
            job = max(jobs, key=lambda j: len(j.nodes))
        if job is None:
            return
        self._job_ref = job
        self.target = f"job.{job.id}"
        job.inject_imbalance(self.frac_busy, self.wait_util)

    def revert(self, m: "Machine") -> None:
        job = self._job_ref
        if job is not None:
            job.clear_imbalance()


@dataclass
class CorrosionExcursion(Fault):
    """Machine-room corrosive-gas excursion (ORNL sulfur scenario)."""

    rate: float = 1400.0   # A/month coupon rate; >> ASHRAE G1 limit
    name: str = "corrosion_excursion"

    def apply(self, m: "Machine") -> None:
        self.target = "room0"
        m.room.corrosion_rate = self.rate
        m.emit_event(
            EventKind.ENV, Severity.WARNING, "room0",
            f"corrosion coupon rate {self.rate:.0f} A/month exceeds "
            f"ASHRAE G1 severity",
        )

    def revert(self, m: "Machine") -> None:
        m.room.corrosion_rate = m.room.baseline_corrosion
        m.emit_event(
            EventKind.ENV, Severity.NOTICE, "room0",
            "corrosion coupon rate back within ASHRAE G1",
        )


@dataclass
class LinkFailure(Fault):
    """An HSN link fails; routes around it; recovery is delayed.

    Section III-A: "delays in recovery from HSN link failures may impact
    other components using the HSN" — while the link is out, traffic
    squeezes onto neighbors (captured naturally by rerouting), and the
    machine emits the cross-component event trail the correlation
    analysis stitches together.
    """

    link_index: int = 0
    name: str = "link_failure"

    def apply(self, m: "Machine") -> None:
        link = m.topo.link_by_index(self.link_index)
        self.target = link.name
        m.network.fail_link(self.link_index)
        m.emit_event(
            EventKind.NETWORK, Severity.ERROR, link.a,
            f"HSN link {link.name} ({link.klass}) failed: LCB lanes down",
            fields={"link_index": self.link_index, "peer": link.b},
        )
        m.emit_event(
            EventKind.NETWORK, Severity.WARNING, link.b,
            f"routing around failed link {link.name}; quiesce+reroute",
            fields={"link_index": self.link_index},
        )

    def revert(self, m: "Machine") -> None:
        link = m.topo.link_by_index(self.link_index)
        m.network.restore_link(self.link_index)
        m.emit_event(
            EventKind.NETWORK, Severity.NOTICE, link.a,
            f"HSN link {link.name} restored after maintenance",
            fields={"link_index": self.link_index},
        )


@dataclass
class BerDegradation(Fault):
    """A marginal cable's bit-error rate grows steadily (ALCF trend)."""

    link_index: int = 0
    decades_per_day: float = 1.0
    name: str = "ber_degradation"

    def apply(self, m: "Machine") -> None:
        link = m.topo.link_by_index(self.link_index)
        self.target = link.name
        m.network.start_ber_degradation(
            self.link_index, self.decades_per_day
        )

    def revert(self, m: "Machine") -> None:
        m.network.ber_growth[self.link_index] = 0.0


@dataclass
class SlowOst(Fault):
    """One OST degrades to a fraction of nominal bandwidth."""

    ost: int = 0
    bw_factor: float = 0.15
    name: str = "slow_ost"

    def apply(self, m: "Machine") -> None:
        self.target = f"{m.fs.name}-ost{self.ost}"
        m.fs.set_slow_ost(self.ost, self.bw_factor)
        m.emit_event(
            EventKind.FILESYSTEM, Severity.WARNING, self.target,
            f"ost{self.ost}: slow_io: request queue growing",
        )

    def revert(self, m: "Machine") -> None:
        m.fs.heal_ost(self.ost)


@dataclass
class MdsDegradation(Fault):
    """The metadata server degrades to a fraction of nominal op rate."""

    rate_factor: float = 0.2
    name: str = "mds_degradation"

    def apply(self, m: "Machine") -> None:
        self.target = f"{m.fs.name}-mds"
        m.fs.set_mds_degraded(self.rate_factor)

    def revert(self, m: "Machine") -> None:
        m.fs.set_mds_degraded(1.0)


@dataclass
class ServiceDeath(Fault):
    """An essential node daemon dies (LANL check target)."""

    node: str = ""
    service: str = "slurmd"
    name: str = "service_death"

    def __post_init__(self) -> None:
        self.target = f"{self.node}:{self.service}"

    def apply(self, m: "Machine") -> None:
        m.nodes.kill_service(self.node, self.service)
        m.emit_event(
            EventKind.CONSOLE, Severity.ERROR, self.node,
            f"systemd: {self.service}.service: main process exited",
        )

    def revert(self, m: "Machine") -> None:
        m.nodes.restore_service(self.node, self.service)


@dataclass
class MountLoss(Fault):
    """A node loses a required filesystem mount."""

    node: str = ""
    mount: str = "/scratch"
    name: str = "mount_loss"

    def __post_init__(self) -> None:
        self.target = f"{self.node}:{self.mount}"

    def apply(self, m: "Machine") -> None:
        m.nodes.drop_mount(self.node, self.mount)
        m.emit_event(
            EventKind.FILESYSTEM, Severity.ERROR, self.node,
            f"lustre: {self.mount}: connection to MDS lost, mount stale",
        )

    def revert(self, m: "Machine") -> None:
        m.nodes.restore_mount(self.node, self.mount)


@dataclass
class ConfigDrift(Fault):
    """A node's configuration silently diverges from the golden image
    (failed image push, manual tweak left behind) — the LANL
    configuration-verification target."""

    node: str = ""
    new_hash: int = 0xBAD
    name: str = "config_drift"

    def __post_init__(self) -> None:
        self.target = self.node

    def apply(self, m: "Machine") -> None:
        m.nodes.drift_config(self.node, self.new_hash)

    def revert(self, m: "Machine") -> None:
        m.nodes.restore_config(self.node)


@dataclass
class MemoryLeak(Fault):
    """System software leaks memory on a node (LANL free-memory check)."""

    node: str = ""
    gb_per_s: float = 0.02
    name: str = "memory_leak"

    def __post_init__(self) -> None:
        self.target = self.node

    def apply(self, m: "Machine") -> None:
        m.nodes.start_leak(self.node, self.gb_per_s)

    def revert(self, m: "Machine") -> None:
        m.nodes.stop_leak(self.node)


@dataclass
class QueueBlockage(Fault):
    """The scheduler stops launching (NERSC queue-fill anomaly)."""

    name: str = "queue_blockage"

    def apply(self, m: "Machine") -> None:
        self.target = "scheduler"
        m.scheduler.set_blocked(True)
        m.emit_event(
            EventKind.SCHEDULER, Severity.WARNING, "scheduler",
            "job launches suspended: prolog failures on multiple nodes",
        )

    def revert(self, m: "Machine") -> None:
        m.scheduler.set_blocked(False)
        m.emit_event(
            EventKind.SCHEDULER, Severity.NOTICE, "scheduler",
            "job launches resumed",
        )


@dataclass
class ThermalExcursion(Fault):
    """Machine-room cooling event: ambient temperature rises."""

    delta_c: float = 8.0
    name: str = "thermal_excursion"

    def apply(self, m: "Machine") -> None:
        self.target = "room0"
        m.room.ambient_c += self.delta_c
        m.emit_event(
            EventKind.ENV, Severity.WARNING, "room0",
            f"ambient temperature rose {self.delta_c:.1f} C: "
            f"chiller capacity reduced",
        )

    def revert(self, m: "Machine") -> None:
        m.room.ambient_c -= self.delta_c
        m.emit_event(
            EventKind.ENV, Severity.NOTICE, "room0",
            "ambient temperature back to setpoint",
        )


class FaultInjector:
    """Applies scheduled faults against a machine as time advances."""

    def __init__(self, faults: list[Fault] | None = None) -> None:
        self.faults: list[Fault] = list(faults or [])

    def add(self, fault: Fault) -> Fault:
        self.faults.append(fault)
        return fault

    def step(self, m: "Machine", now: float) -> None:
        for f in self.faults:
            if not f.applied and now >= f.start:
                f.apply(m)
                f.applied = True
            if (
                f.applied
                and not f.reverted
                and f.duration is not None
                and now >= f.start + f.duration
            ):
                f.revert(m)
                f.reverted = True

    def clear(self, m: "Machine", fault: Fault) -> None:
        """Explicitly end an open-ended fault."""
        if fault.applied and not fault.reverted:
            fault.revert(m)
            fault.reverted = True

    def ground_truth(self) -> list[dict]:
        """The injected-condition record tests compare detectors against."""
        return [
            {
                "name": f.name,
                "target": f.target,
                "start": f.start,
                "end": None if f.duration is None else f.start + f.duration,
                "applied": f.applied,
            }
            for f in self.faults
        ]
