"""Simulated HPC platform substrate (the monitored system)."""

from .components import GpuStore
from .faults import (
    BerDegradation,
    ConfigDrift,
    CorrosionExcursion,
    Fault,
    FaultInjector,
    HungNode,
    LinkFailure,
    LoadImbalance,
    MdsDegradation,
    MemoryLeak,
    MountLoss,
    QueueBlockage,
    ServiceDeath,
    SlowOst,
    ThermalExcursion,
)
from .filesystem import IODemand, LustreFS
from .machine import Machine, RoomEnv
from .network import FLIT_BYTES, Flow, NetworkState
from .node import ESSENTIAL_SERVICES, Node, NodeStore
from .power import PowerModel
from .scheduler import (
    BatchScheduler,
    PackedPlacement,
    ScatteredPlacement,
    SchedulerEvent,
    TopoAwarePlacement,
)
from .topology import (
    DragonflyTopology,
    Link,
    NoRouteError,
    Topology,
    TorusTopology,
    build_dragonfly,
    build_torus,
)
from .workload import (
    APP_LIBRARY,
    AppProfile,
    CommPattern,
    Job,
    JobGenerator,
    JobState,
    Phase,
)

__all__ = [
    "GpuStore",
    "BerDegradation",
    "ConfigDrift",
    "CorrosionExcursion",
    "Fault",
    "FaultInjector",
    "HungNode",
    "LinkFailure",
    "LoadImbalance",
    "MdsDegradation",
    "MemoryLeak",
    "MountLoss",
    "QueueBlockage",
    "ServiceDeath",
    "SlowOst",
    "ThermalExcursion",
    "IODemand",
    "LustreFS",
    "Machine",
    "RoomEnv",
    "FLIT_BYTES",
    "Flow",
    "NetworkState",
    "ESSENTIAL_SERVICES",
    "Node",
    "NodeStore",
    "PowerModel",
    "BatchScheduler",
    "PackedPlacement",
    "ScatteredPlacement",
    "SchedulerEvent",
    "TopoAwarePlacement",
    "DragonflyTopology",
    "Link",
    "Topology",
    "TorusTopology",
    "build_dragonfly",
    "build_torus",
    "APP_LIBRARY",
    "AppProfile",
    "CommPattern",
    "Job",
    "JobGenerator",
    "JobState",
    "Phase",
]
