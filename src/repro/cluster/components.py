"""Non-CPU hardware components: GPUs (with ORNL-style corrosion ageing).

ORNL's Titan experience (Section II-6): ~2.5 years into production, GPU
failure rates climbed because the SXM manufacturing process used
non-sulfur-resistant materials; corrosive-gas exposure grew crystalline
structures that changed resistor values until boards failed.  We model a
GPU population whose *health margin* decays at a rate driven by the
machine-room corrosion severity; when a GPU's margin crosses zero it
fails (emitting hardware-error events via the machine).  Replacing a GPU
with a sulfur-resistant part makes it immune — which is how the ORNL
bench shows the failure wave ending once monitoring + BoM enforcement
landed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["GpuStore"]


class GpuStore:
    """Structure-of-arrays state for the GPU population.

    One GPU per listed host node (Piz Daint / Titan style hybrid blades).
    ``health`` is the remaining margin in [0, 1]; decay per second is
    ``corrosion_rate * susceptibility`` where susceptibility is 0 for
    sulfur-resistant parts.  ECC double-bit errors become increasingly
    likely as health declines, so trend analysis (ALCF/ORNL) can see the
    failure wave coming before dies actually drop.
    """

    def __init__(
        self,
        host_nodes: list[str],
        base_fail_per_year: float = 0.02,
        seed: int = 0,
    ) -> None:
        self.host_nodes = list(host_nodes)
        self.index = {n: i for i, n in enumerate(self.host_nodes)}
        n = len(self.host_nodes)
        self.n = n
        rng = np.random.default_rng(seed)
        self._rng = rng
        # manufacturing spread in initial margin
        self.health = rng.uniform(0.85, 1.0, n)
        self.susceptibility = np.ones(n)       # 1 = vulnerable BoM
        self.failed = np.zeros(n, dtype=bool)
        self.temp_c = np.full(n, 40.0)
        self.ecc_dbe = np.zeros(n, dtype=np.int64)
        self.base_fail_per_year = float(base_fail_per_year)

    @property
    def names(self) -> list[str]:
        """GPU component cnames: host node cname + 'g0'."""
        return [f"{n}g0" for n in self.host_nodes]

    def step(
        self,
        dt: float,
        corrosion_rate: float,
        util: np.ndarray | None = None,
    ) -> list[int]:
        """Advance ageing by ``dt``; returns indices of GPUs failing now.

        ``corrosion_rate`` is the room's corrosion-coupon severity (the
        ``env.corrosion_rate`` metric); the nominal ASHRAE G1 limit is
        ~300 A/month copper — decay scales with the excess above a benign
        baseline, so a clean room produces only the background failure
        rate.
        """
        alive = ~self.failed
        if not alive.any():
            return []
        # corrosion-driven decay: excess above benign baseline of 200
        excess = max(0.0, corrosion_rate - 200.0)
        decay = (excess / 300.0) * 2.5e-7 * self.susceptibility * dt
        # background wear
        decay += self.base_fail_per_year / (365 * 86400) * dt
        self.health[alive] -= decay[alive]

        # ECC errors ramp as margin erodes below 0.3
        stressed = alive & (self.health < 0.3)
        if stressed.any():
            lam = (0.3 - self.health[stressed]).clip(0) * 2e-2 * dt
            self.ecc_dbe[stressed] += self._rng.poisson(lam)

        # GPU temperature tracks utilization
        if util is not None:
            target = 40.0 + 40.0 * util
            self.temp_c += (target - self.temp_c) * min(1.0, dt / 20.0)

        newly = alive & (self.health <= 0.0)
        self.failed |= newly
        return list(np.nonzero(newly)[0])

    def replace(self, host_node: str, sulfur_resistant: bool = True) -> None:
        """Swap in a replacement part (ORNL remediation path)."""
        i = self.index[host_node]
        self.failed[i] = False
        self.ecc_dbe[i] = 0
        self.health[i] = float(self._rng.uniform(0.9, 1.0))
        self.susceptibility[i] = 0.0 if sulfur_resistant else 1.0

    def ok_mask(self) -> np.ndarray:
        return ~self.failed

    def failed_hosts(self) -> list[str]:
        return [self.host_nodes[i] for i in np.nonzero(self.failed)[0]]
