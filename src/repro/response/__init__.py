"""Response: SEC-style correlation, alerting, automated actions."""

from .actions import ActionEngine, Alert, AlertManager, AuditRecord
from .governor import CongestionAwarePlacement, PowerGovernor
from .policy import default_rules, default_sec_engine, detections_to_requests
from .sec import ActionRequest, PairRule, SecEngine, SingleRule, ThresholdRule

__all__ = [
    "CongestionAwarePlacement",
    "PowerGovernor",
    "ActionEngine",
    "Alert",
    "AlertManager",
    "AuditRecord",
    "default_rules",
    "default_sec_engine",
    "detections_to_requests",
    "ActionRequest",
    "PairRule",
    "SecEngine",
    "SingleRule",
    "ThresholdRule",
]
