"""Simple Event Correlator: rule-driven detection and response.

Section III-C: "vendor-provided or widely available tools such as Cray's
Simple Event Correlator (SEC), Splunk and Nagios enable response when
well-known conditions are met, typically via regular-expression
matching.  Responses are typically simple - such as issuing an alert or
marking a node as down."

The engine reproduces SEC's working vocabulary:

* :class:`SingleRule` — regex match → action (optionally gated on a
  context, optionally setting/clearing contexts);
* :class:`PairRule` — match A arms a watch; match B on the same
  component within the window is the *completion* (e.g. failure then
  recovery); if the window expires unanswered the timeout action fires
  (failure with *no* recovery — the interesting case);
* :class:`ThresholdRule` — N matches within a sliding window → action
  (event-storm and flapping detection).

Actions are :class:`ActionRequest` records handed to the action engine
(:mod:`repro.response.actions`); rules never touch the machine
directly.
"""

from __future__ import annotations

import re
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..core.events import Event, Severity

__all__ = [
    "ActionRequest",
    "SingleRule",
    "PairRule",
    "ThresholdRule",
    "SecEngine",
]


@dataclass(frozen=True, slots=True)
class ActionRequest:
    """What a rule wants done."""

    time: float
    rule: str
    action: str              # "alert" | "drain_node" | "return_node" | ...
    component: str
    severity: Severity
    message: str
    fields: dict = field(default_factory=dict)


@dataclass
class SingleRule:
    """regex match -> action.

    ``forward_fields`` copies the triggering event's structured
    ``fields`` onto the emitted request — rules whose events carry
    machine-readable evidence (e.g. a freshness breach's exemplar: the
    offending hop and its latency) keep it past the regex match, so
    downstream consumers need not re-parse the message.
    """

    name: str
    pattern: str
    action: str
    severity: Severity = Severity.WARNING
    requires_context: str | None = None
    sets_context: str | None = None
    clears_context: str | None = None
    forward_fields: bool = False

    def __post_init__(self) -> None:
        self._rx = re.compile(self.pattern)


@dataclass
class PairRule:
    """match A arms; B within window completes; expiry -> timeout action.

    Keyed per component so concurrent episodes on different components
    track independently (the paper's cross-component association need).
    """

    name: str
    pattern_a: str
    pattern_b: str
    window_s: float
    timeout_action: str
    completion_action: str | None = None
    severity: Severity = Severity.ERROR

    def __post_init__(self) -> None:
        self._rx_a = re.compile(self.pattern_a)
        self._rx_b = re.compile(self.pattern_b)


@dataclass
class ThresholdRule:
    """N matching events within a sliding window -> action."""

    name: str
    pattern: str
    count: int
    window_s: float
    action: str
    severity: Severity = Severity.WARNING
    per_component: bool = False

    def __post_init__(self) -> None:
        self._rx = re.compile(self.pattern)


class SecEngine:
    """Feeds events through the rule set; collects action requests."""

    def __init__(
        self,
        rules: Sequence[SingleRule | PairRule | ThresholdRule] = (),
    ) -> None:
        self.singles: list[SingleRule] = []
        self.pairs: list[PairRule] = []
        self.thresholds: list[ThresholdRule] = []
        for r in rules:
            self.add(r)
        self.contexts: set[str] = set()
        # pair rule name -> component -> armed-at time
        self._armed: dict[str, dict[str, float]] = defaultdict(dict)
        # threshold rule name -> key -> deque of match times
        self._windows: dict[str, dict[str, deque]] = defaultdict(
            lambda: defaultdict(deque)
        )
        self.requests: list[ActionRequest] = []
        self.events_seen = 0

    def add(self, rule) -> None:
        if isinstance(rule, SingleRule):
            self.singles.append(rule)
        elif isinstance(rule, PairRule):
            self.pairs.append(rule)
        elif isinstance(rule, ThresholdRule):
            self.thresholds.append(rule)
        else:
            raise TypeError(f"unknown rule type {type(rule)!r}")

    # -- feeding ------------------------------------------------------------------

    def feed(self, events: Iterable[Event]) -> list[ActionRequest]:
        """Process events (time order assumed); returns new requests."""
        start = len(self.requests)
        for ev in events:
            self.events_seen += 1
            self._expire_pairs(ev.time)
            self._feed_singles(ev)
            self._feed_pairs(ev)
            self._feed_thresholds(ev)
        return self.requests[start:]

    def tick(self, now: float) -> list[ActionRequest]:
        """Advance time with no events (lets pair timeouts fire)."""
        start = len(self.requests)
        self._expire_pairs(now)
        return self.requests[start:]

    # -- rule mechanics ------------------------------------------------------------

    def _emit(self, time, rule, action, component, severity, message,
              **fields) -> None:
        self.requests.append(
            ActionRequest(time, rule, action, component, severity,
                          message, fields)
        )

    def _feed_singles(self, ev: Event) -> None:
        for r in self.singles:
            if r.requires_context and r.requires_context not in self.contexts:
                continue
            if not r._rx.search(ev.message):
                continue
            if r.sets_context:
                self.contexts.add(r.sets_context)
            if r.clears_context:
                self.contexts.discard(r.clears_context)
            self._emit(
                ev.time, r.name, r.action, ev.component, r.severity,
                f"{r.name}: {ev.message}",
                **(dict(ev.fields) if r.forward_fields and ev.fields
                   else {}),
            )

    def _feed_pairs(self, ev: Event) -> None:
        for r in self.pairs:
            armed = self._armed[r.name]
            if r._rx_b.search(ev.message) and ev.component in armed:
                armed.pop(ev.component)
                if r.completion_action:
                    self._emit(
                        ev.time, r.name, r.completion_action,
                        ev.component, Severity.NOTICE,
                        f"{r.name}: completed by '{ev.message}'",
                    )
                continue
            if r._rx_a.search(ev.message) and ev.component not in armed:
                armed[ev.component] = ev.time

    def _expire_pairs(self, now: float) -> None:
        for r in self.pairs:
            armed = self._armed[r.name]
            expired = [
                comp
                for comp, t0 in armed.items()
                if now - t0 > r.window_s
            ]
            for comp in expired:
                t0 = armed.pop(comp)
                self._emit(
                    t0 + r.window_s, r.name, r.timeout_action, comp,
                    r.severity,
                    f"{r.name}: no completion within {r.window_s:g}s",
                )

    def _feed_thresholds(self, ev: Event) -> None:
        for r in self.thresholds:
            if not r._rx.search(ev.message):
                continue
            key = ev.component if r.per_component else "*"
            window = self._windows[r.name][key]
            window.append(ev.time)
            while window and ev.time - window[0] > r.window_s:
                window.popleft()
            if len(window) >= r.count:
                self._emit(
                    ev.time, r.name, r.action, ev.component, r.severity,
                    f"{r.name}: {len(window)} matches within "
                    f"{r.window_s:g}s",
                    count=len(window),
                )
                window.clear()   # re-arm
