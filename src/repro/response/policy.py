"""Response policy: wiring detections and rules to actions.

The glue Table I asks for — "Data and analysis results should be able to
be exposed to applications and system software" — expressed as a default
rule set covering every fault the substrate can inject, plus an adapter
that turns :class:`~repro.analysis.anomaly.Detection` records from the
statistical detectors into the same :class:`ActionRequest` currency the
SEC rules use, so one action engine serves both pathways.
"""

from __future__ import annotations

from typing import Sequence

from ..analysis.anomaly import Detection
from ..core.events import Severity
from .sec import ActionRequest, PairRule, SecEngine, SingleRule, ThresholdRule

__all__ = ["default_rules", "default_sec_engine", "detections_to_requests"]


def default_rules() -> list[SingleRule | PairRule | ThresholdRule]:
    """Rules covering the well-known log lines of every injected fault."""
    return [
        # hung node: alert, and keep new work off it
        SingleRule(
            name="soft_lockup",
            pattern=r"soft lockup",
            action="alert",
            severity=Severity.ERROR,
        ),
        SingleRule(
            name="soft_lockup_drain",
            pattern=r"soft lockup",
            action="drain_node",
            severity=Severity.ERROR,
        ),
        # GPU falls off the bus: the node must not take another job (CSCS)
        SingleRule(
            name="gpu_falloff_drain",
            pattern=r"fallen off the bus",
            action="drain_node",
            severity=Severity.CRITICAL,
        ),
        SingleRule(
            name="gpu_falloff",
            pattern=r"fallen off the bus",
            action="alert",
            severity=Severity.CRITICAL,
        ),
        # service/mount failures: alert (repair is human)
        SingleRule(
            name="service_exit",
            pattern=r"main process exited",
            action="alert",
            severity=Severity.ERROR,
        ),
        SingleRule(
            name="mount_stale",
            pattern=r"mount stale|connection to MDS lost",
            action="alert",
            severity=Severity.ERROR,
        ),
        # link failed and did NOT come back within 10 minutes: page
        PairRule(
            name="link_recovery_watch",
            pattern_a=r"HSN link .* failed:",
            pattern_b=r"HSN link .* restored",
            window_s=600.0,
            timeout_action="alert",
            severity=Severity.ALERT,
        ),
        # event storms: many hardware errors in a short window
        ThresholdRule(
            name="hwerr_storm",
            pattern=r"machine check|fallen off the bus|LCB lanes down",
            count=5,
            window_s=3600.0,
            action="alert",
            severity=Severity.ALERT,
        ),
        # flapping node health: repeated failures on one component
        ThresholdRule(
            name="health_flap",
            pattern=r"health check .* FAILED",
            count=3,
            window_s=1800.0,
            action="drain_node",
            severity=Severity.WARNING,
            per_component=True,
        ),
        # environment: ASHRAE excursion
        SingleRule(
            name="ashrae",
            pattern=r"ASHRAE (excursion|G1 severity)",
            action="alert",
            severity=Severity.ALERT,
        ),
        # queue blockage
        SingleRule(
            name="queue_blocked",
            pattern=r"job launches suspended",
            action="alert",
            severity=Severity.ERROR,
        ),
        # degraded benchmark: the NERSC "investigate" trigger
        SingleRule(
            name="bench_degraded",
            pattern=r"benchmark \w+ DEGRADED",
            action="alert",
            severity=Severity.WARNING,
        ),
        # filesystem slow-io noise
        ThresholdRule(
            name="slow_io_persistent",
            pattern=r"slow_io",
            count=3,
            window_s=1800.0,
            action="alert",
            severity=Severity.WARNING,
        ),
        # the monitor watching itself: a supervised pipeline component
        # degrading or failing means the data everything above relies on
        # is suspect — escalate rather than silently thinning coverage
        SingleRule(
            name="monitor_self_degraded",
            pattern=r"monitor component .* -> (DEGRADED|FAILED)",
            action="alert",
            severity=Severity.ALERT,
        ),
        # repeated self-degradation of the same component: flapping
        # collector / lossy transport — page, don't just log
        ThresholdRule(
            name="monitor_self_flap",
            pattern=r"monitor component .* -> (DEGRADED|FAILED)",
            count=3,
            window_s=3600.0,
            action="alert",
            severity=Severity.CRITICAL,
            per_component=True,
        ),
        # freshness SLO breach: data is arriving, but too stale to act
        # on — the breach message carries the worst exemplar's hop
        # vector, so the alert names the hop where the latency lives
        SingleRule(
            name="freshness_slo_breach",
            pattern=r"freshness SLO .* breached",
            action="alert",
            severity=Severity.ALERT,
            forward_fields=True,   # exemplar hop + latency ride along
        ),
        # the same SLO breaching repeatedly: a sustained staleness
        # regression (stalled pumps, overloaded aggregation window)
        ThresholdRule(
            name="freshness_slo_persistent",
            pattern=r"freshness SLO .* breached",
            count=3,
            window_s=3600.0,
            action="alert",
            severity=Severity.CRITICAL,
            per_component=True,
        ),
    ]


def default_sec_engine() -> SecEngine:
    return SecEngine(default_rules())


_DETECTION_ACTIONS: dict[str, tuple[str, Severity]] = {
    # statistical-detector kind -> (action, severity)
    "outlier": ("alert", Severity.WARNING),
    "threshold": ("alert", Severity.WARNING),
    "shift": ("alert", Severity.WARNING),
    "changepoint": ("alert", Severity.WARNING),
}


def detections_to_requests(
    detections: Sequence[Detection],
    rule_prefix: str = "stat",
) -> list[ActionRequest]:
    """Adapt statistical detections onto the action-request currency."""
    out = []
    for d in detections:
        action, severity = _DETECTION_ACTIONS.get(
            d.kind, ("alert", Severity.WARNING)
        )
        out.append(
            ActionRequest(
                time=d.time,
                rule=f"{rule_prefix}.{d.metric}.{d.kind}",
                action=action,
                component=d.component,
                severity=severity,
                message=f"{d.metric} {d.kind} on {d.component}: {d.detail}",
                fields={"score": d.score},
            )
        )
    return out
