"""Envisioned responses: power-aware and congestion-aware scheduling.

Section III-C lists the responses sites *envision* beyond alerts and
node-downs: "Power-aware scheduling seems likely to become important
with increasing scale ... sites envision the redirection of power
between platforms ... based on both current and anticipated needs" and
"Scheduling and allocation based on application and resource state is
an active area of interest."  Both are implemented here on top of the
monitoring data the stack already produces:

* :class:`PowerGovernor` — keeps system power under a budget by (a)
  admission control (jobs whose estimated draw would bust the budget
  wait) and (b) optional frequency capping of running work to *make
  room* rather than wait (the power-redirection behaviour);
* :class:`CongestionAwarePlacement` — a placement policy that reads the
  live per-link stall counters and fills the least-congested topology
  groups first, keeping new jobs away from hot regions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..cluster.power import PowerModel
from ..cluster.scheduler import TopoAwarePlacement

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.machine import Machine
    from ..cluster.network import NetworkState
    from ..cluster.topology import Topology
    from ..cluster.workload import Job

__all__ = ["PowerGovernor", "CongestionAwarePlacement"]


class PowerGovernor:
    """Admission control + frequency capping against a power budget.

    Wire :meth:`admit` as the scheduler's ``admission_control``.  With
    ``downclock_to_fit=True`` the governor lowers the whole machine's
    p-state cap when the budget is tight (power redirection: trade
    frequency for the ability to start more work) and restores it when
    headroom returns.
    """

    def __init__(
        self,
        machine: "Machine",
        budget_w: float,
        downclock_to_fit: bool = False,
        min_pstate: float = 0.7,
        settle_s: float = 60.0,
    ) -> None:
        self.machine = machine
        self.budget_w = float(budget_w)
        self.downclock_to_fit = downclock_to_fit
        self.min_pstate = float(min_pstate)
        # power meters lag job starts (thermal/electrical settling); an
        # admitted job's estimated draw is held as a *commitment* until
        # the meter has had time to reflect it, so a burst of arrivals
        # cannot slip past the budget in the blind window
        self.settle_s = float(settle_s)
        self._commits: list[tuple[float, float]] = []
        self._pm = PowerModel(machine.topo, machine.nodes)
        self.deferred = 0
        self.downclocks = 0

    def _pending_commit_w(self) -> float:
        now = self.machine.now
        self._commits = [
            (t, w) for (t, w) in self._commits if now - t < self.settle_s
        ]
        return sum(w for _, w in self._commits)

    def headroom_w(self) -> float:
        return (
            self.budget_w
            - self._pm.system_power_w()
            - self._pending_commit_w()
        )

    def _estimate(self, job: "Job") -> float:
        # estimate at the *current* machine-wide p-state cap: capped
        # frequency lowers the marginal draw of new work
        p = float(self.machine.nodes.pstate_frac.mean())
        nodes = self.machine.nodes
        dyn = (nodes.max_power_w - nodes.idle_power_w) * p * p
        # idle draw is already being paid; the job adds the dynamic part
        return job.n_nodes * dyn

    def _projected_w(self, p: float, extra_nodes: int = 0) -> float:
        """Conservative projection of system draw at p-state cap ``p``:
        every allocated node (plus ``extra_nodes`` about to start) runs
        flat out, and blowers spin at the corresponding load."""
        nodes = self.machine.nodes
        n_alloc = len(self.machine.scheduler.allocated) + extra_nodes
        dyn = nodes.max_power_w - nodes.idle_power_w
        node_w = (
            float(nodes.idle_power_w * nodes.up.sum())
            + dyn * p * p * n_alloc
        )
        n_cab = len(self._pm.cabinets)
        load_frac = min(
            1.0, node_w / (nodes.n * nodes.max_power_w)
        )
        blowers = n_cab * (
            self._pm.blower_base_w + self._pm.blower_dyn_w * load_frac
        )
        return node_w + blowers

    def admit(self, job: "Job") -> bool:
        """Scheduler admission hook: may this job start right now?"""
        estimate = self._estimate(job)
        if estimate <= self.headroom_w():
            self._commits.append((self.machine.now, estimate))
            return True
        if self.downclock_to_fit and self._make_room(job):
            self._commits.append(
                (self.machine.now, self._estimate(job))
            )
            return True
        self.deferred += 1
        return False

    def _make_room(self, job: "Job") -> bool:
        """Cap frequency machine-wide until the job fits (or give up)."""
        nodes = self.machine.nodes
        current = float(nodes.pstate_frac.mean())
        for p in (0.9, 0.8, self.min_pstate):
            if p >= current:
                continue
            if self._projected_w(p, extra_nodes=job.n_nodes) <= self.budget_w:
                nodes.pstate_frac[:] = p
                self.downclocks += 1
                return True
        return False

    def relax(self) -> None:
        """Restore full frequency when comfortably under budget.

        Call periodically (e.g. each scheduler tick); the conservative
        full-frequency projection plus a 5% margin avoids cap/uncap
        flapping and overshoot.
        """
        if not self.downclock_to_fit:
            return
        nodes = self.machine.nodes
        if float(nodes.pstate_frac.mean()) >= 1.0:
            return
        if self._projected_w(1.0) < 0.95 * self.budget_w:
            nodes.pstate_frac[:] = 1.0


class CongestionAwarePlacement(TopoAwarePlacement):
    """TAS that also avoids currently congested topology groups.

    Groups are ordered by a congestion score — the mean stall ratio of
    links whose endpoints sit in the group — *then* by free-node count;
    a new job therefore lands in the coolest region that can hold it.
    Falls back to plain TAS ordering when the network is quiet.
    """

    name = "congestion_aware"

    def __init__(self, network: "NetworkState",
                 stall_floor: float = 0.02) -> None:
        self.network = network
        self.stall_floor = float(stall_floor)

    def _group_scores(self, topo: "Topology") -> dict[int, float]:
        router_group: dict[str, int] = {}
        for node, router in topo.node_router.items():
            router_group.setdefault(router, topo.node_group[node])
        sums: dict[int, float] = {}
        counts: dict[int, int] = {}
        stall = self.network.link_stall_ratio
        for link in topo.links:
            for end in (link.a, link.b):
                g = router_group.get(end)
                if g is None:
                    continue
                sums[g] = sums.get(g, 0.0) + float(stall[link.index])
                counts[g] = counts.get(g, 0) + 1
        return {
            g: (sums[g] / counts[g] if counts[g] else 0.0) for g in sums
        }

    def place(self, topo, free, n_nodes, rng):
        if len(free) < n_nodes:
            return None
        scores = self._group_scores(topo)
        by_group: dict[int, list[str]] = {}
        for n in free:
            by_group.setdefault(topo.node_group[n], []).append(n)
        # coolest groups first; fullest first among equally cool ones
        groups = sorted(
            by_group.items(),
            key=lambda kv: (
                round(max(scores.get(kv[0], 0.0) - self.stall_floor, 0.0), 3),
                -len(kv[1]),
                kv[0],
            ),
        )
        chosen: list[str] = []
        for _, nodes in groups:
            nodes.sort()
            take = min(len(nodes), n_nodes - len(chosen))
            chosen.extend(nodes[:take])
            if len(chosen) == n_nodes:
                return chosen
        return None
