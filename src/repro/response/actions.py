"""Action execution: alerts and automated responses, with an audit trail.

Table I (*Response*): "Reporting and alerting capabilities should be
easily configurable ... able to be triggered based on arbitrary
locations in the data and analysis pathways", and responses like
"issuing an alert or marking a node as down" (Section III-C) plus the
envisioned richer ones ("downclocking components", power redirection).

:class:`ActionEngine` executes :class:`~repro.response.sec.ActionRequest`
records against the machine:

* ``alert``          — record + deduplicate an alert (no machine effect);
* ``drain_node``     — take the component out of scheduling;
* ``return_node``    — give it back;
* ``kill_jobs``      — fail whatever runs on the component;
* ``downclock``      — cap the node's p-state (thermal response);
* ``power_cap``      — cap a set of nodes for power redirection.

Every execution is appended to an audit log and emitted back into the
event stream as an ``ACTION`` event, so responses are themselves
monitorable (feedback "to both humans and software").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from ..core.events import EventKind, Severity
from .sec import ActionRequest

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.machine import Machine

__all__ = ["Alert", "AuditRecord", "AlertManager", "ActionEngine"]


@dataclass(frozen=True, slots=True)
class Alert:
    time: float
    severity: Severity
    component: str
    rule: str
    message: str


class AlertManager:
    """Alert intake with per-(rule, component) dedup and renotify."""

    def __init__(self, renotify_s: float = 3600.0) -> None:
        self.renotify_s = float(renotify_s)
        self.alerts: list[Alert] = []
        self.suppressed = 0
        self._last: dict[tuple[str, str], float] = {}

    def raise_alert(
        self,
        time: float,
        severity: Severity,
        component: str,
        rule: str,
        message: str,
    ) -> Alert | None:
        key = (rule, component)
        last = self._last.get(key)
        if last is not None and time - last < self.renotify_s:
            self.suppressed += 1
            return None
        self._last[key] = time
        alert = Alert(time, severity, component, rule, message)
        self.alerts.append(alert)
        return alert

    def active(self, min_severity: Severity = Severity.WARNING) -> list[Alert]:
        return [a for a in self.alerts if a.severity >= min_severity]


@dataclass(frozen=True, slots=True)
class AuditRecord:
    time: float
    action: str
    component: str
    rule: str
    outcome: str


class ActionEngine:
    """Executes action requests against a machine, with audit."""

    def __init__(
        self,
        machine: "Machine",
        alert_manager: AlertManager | None = None,
        dry_run: bool = False,
    ) -> None:
        self.machine = machine
        self.alerts = alert_manager or AlertManager()
        self.dry_run = dry_run
        self.audit: list[AuditRecord] = []
        self._handlers: dict[str, Callable[[ActionRequest], str]] = {
            "alert": self._do_alert,
            "drain_node": self._do_drain,
            "return_node": self._do_return,
            "kill_jobs": self._do_kill_jobs,
            "downclock": self._do_downclock,
            "power_cap": self._do_downclock,   # same mechanism here
        }

    def register(self, action: str,
                 handler: Callable[[ActionRequest], str]) -> None:
        """Add a custom action (Table I extensibility requirement)."""
        self._handlers[action] = handler

    def execute(self, requests: Sequence[ActionRequest]) -> list[AuditRecord]:
        done = []
        for req in requests:
            handler = self._handlers.get(req.action)
            if handler is None:
                outcome = f"unknown action {req.action!r}"
            elif self.dry_run and req.action != "alert":
                outcome = "dry-run: skipped"
            else:
                outcome = handler(req)
            rec = AuditRecord(
                req.time, req.action, req.component, req.rule, outcome
            )
            self.audit.append(rec)
            done.append(rec)
            if req.action != "alert":
                # actions are themselves observable telemetry
                self.machine.emit_event(
                    EventKind.ACTION,
                    Severity.NOTICE,
                    req.component,
                    f"action {req.action} by rule {req.rule}: {outcome}",
                    fields={"rule": req.rule, "action": req.action},
                )
        return done

    # -- handlers ------------------------------------------------------------------

    def _do_alert(self, req: ActionRequest) -> str:
        alert = self.alerts.raise_alert(
            req.time, req.severity, req.component, req.rule, req.message
        )
        return "alert raised" if alert else "alert suppressed (dedup)"

    def _node_exists(self, component: str) -> bool:
        return component in self.machine.nodes.index

    def _do_drain(self, req: ActionRequest) -> str:
        if not self._node_exists(req.component):
            return f"not a node: {req.component}"
        self.machine.scheduler.drain_node(req.component)
        return "node drained"

    def _do_return(self, req: ActionRequest) -> str:
        if not self._node_exists(req.component):
            return f"not a node: {req.component}"
        self.machine.scheduler.return_node(req.component)
        return "node returned to service"

    def _do_kill_jobs(self, req: ActionRequest) -> str:
        if not self._node_exists(req.component):
            return f"not a node: {req.component}"
        victims = self.machine.scheduler.kill_jobs_on_node(
            req.component, self.machine.now
        )
        return f"killed {len(victims)} job(s)"

    def _do_downclock(self, req: ActionRequest) -> str:
        if not self._node_exists(req.component):
            return f"not a node: {req.component}"
        frac = float(req.fields.get("pstate_frac", 0.7))
        i = self.machine.nodes.idx(req.component)
        self.machine.nodes.pstate_frac[i] = frac
        return f"pstate capped to {frac:g}"
